package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param][]float64)}
}

// Step applies one update and leaves gradients untouched (call ZeroGrads
// separately).
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum == 0 {
			for i := range p.Data {
				p.Data[i] -= o.LR * p.Grad[i]
			}
			continue
		}
		v, ok := o.velocity[p]
		if !ok {
			v = make([]float64, len(p.Data))
			o.velocity[p] = v
		}
		for i := range p.Data {
			v[i] = o.Momentum*v[i] + p.Grad[i]
			p.Data[i] -= o.LR * v[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba).
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	step         int
	m, v         map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the standard defaults for the
// moment decay rates.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64), v: make(map[*Param][]float64),
	}
}

// Step applies one Adam update.
func (o *Adam) Step(params []*Param) {
	o.step++
	b1c := 1 - math.Pow(o.Beta1, float64(o.step))
	b2c := 1 - math.Pow(o.Beta2, float64(o.step))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float64, len(p.Data))
			o.m[p] = m
			o.v[p] = make([]float64, len(p.Data))
		}
		v := o.v[p]
		for i := range p.Data {
			g := p.Grad[i]
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mhat := m[i] / b1c
			vhat := v[i] / b2c
			p.Data[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
}

// ZeroGrads clears the gradients of all given parameters.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales gradients so their global L2 norm does not exceed
// maxNorm; returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad {
				p.Grad[i] *= scale
			}
		}
	}
	return norm
}
