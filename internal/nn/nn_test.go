package nn

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/ad"
	"repro/internal/rng"
)

func TestDenseForwardShape(t *testing.T) {
	r := rng.New(1)
	d := NewDense("d", 3, 2, r)
	c := NewCtx(false)
	x := c.T.ConstMat([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := d.Forward(c, x)
	if y.Rows() != 2 || y.Cols() != 2 {
		t.Fatalf("Dense output shape %dx%d, want 2x2", y.Rows(), y.Cols())
	}
}

func TestDenseMatchesManual(t *testing.T) {
	d := &Dense{W: NewParam("W", 2, 2), B: NewParam("b", 2, 1)}
	copy(d.W.Data, []float64{1, 2, 3, 4}) // W[in=2,out=2]
	copy(d.B.Data, []float64{10, 20})
	c := NewCtx(false)
	x := c.T.ConstMat([]float64{1, 1}, 1, 2)
	y := d.Forward(c, x)
	// y = [1*1+1*3+10, 1*2+1*4+20] = [14, 26]
	if y.Data()[0] != 14 || y.Data()[1] != 26 {
		t.Fatalf("Dense forward = %v, want [14 26]", y.Data())
	}
}

func TestHarvestGradientMatchesNumeric(t *testing.T) {
	r := rng.New(2)
	net := MLP("m", []int{3, 4, 2}, ActTanh, r)
	x := []float64{0.2, -0.5, 0.9}
	target := []float64{0.3, -0.1}

	lossAt := func() float64 {
		c := NewCtx(false)
		xv := c.T.ConstMat(x, 1, 3)
		out := net.Forward(c, xv)
		return MSE(out, c.T.ConstMat(target, 1, 2)).ScalarValue()
	}

	// Analytic gradients via Harvest.
	c := NewCtx(true)
	xv := c.T.ConstMat(x, 1, 3)
	loss := MSE(net.Forward(c, xv), c.T.ConstMat(target, 1, 2))
	ZeroGrads(net.Params())
	ad.Backward(loss)
	c.Harvest()

	// Numeric check on every parameter element.
	const h = 1e-6
	for _, p := range net.Params() {
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + h
			fp := lossAt()
			p.Data[i] = orig - h
			fm := lossAt()
			p.Data[i] = orig
			num := (fp - fm) / (2 * h)
			if math.Abs(num-p.Grad[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %s[%d]: grad %v, numeric %v", p.Name, i, p.Grad[i], num)
			}
		}
	}
}

func TestInferenceModeBindsConst(t *testing.T) {
	r := rng.New(3)
	net := MLP("m", []int{2, 3, 1}, ActReLU, r)
	c := NewCtx(false)
	x := c.T.VarMat([]float64{1, 2}, 1, 2)
	out := net.Forward(c, x)
	ad.Backward(ad.Sum(out))
	c.Harvest() // must be a no-op
	for _, p := range net.Params() {
		for _, g := range p.Grad {
			if g != 0 {
				t.Fatal("inference mode leaked parameter gradients")
			}
		}
	}
	if x.Grad() == nil {
		t.Fatal("input gradient missing in inference mode")
	}
}

// TestTrainLinearRegression checks the whole train loop machinery converges.
func TestTrainLinearRegression(t *testing.T) {
	r := rng.New(4)
	net := &Sequential{Layers: []Layer{NewDense("lin", 2, 1, r)}}
	opt := NewAdam(0.05)
	// Ground truth: y = 2a - 3b + 0.5.
	sample := func() ([]float64, float64) {
		a, b := r.Uniform(-1, 1), r.Uniform(-1, 1)
		return []float64{a, b}, 2*a - 3*b + 0.5
	}
	for epoch := 0; epoch < 400; epoch++ {
		const batch = 16
		xs := make([]float64, 0, batch*2)
		ys := make([]float64, 0, batch)
		for i := 0; i < batch; i++ {
			x, y := sample()
			xs = append(xs, x...)
			ys = append(ys, y)
		}
		c := NewCtx(true)
		out := net.Forward(c, c.T.ConstMat(xs, batch, 2))
		loss := MSE(out, c.T.ConstMat(ys, batch, 1))
		ZeroGrads(net.Params())
		ad.Backward(loss)
		c.Harvest()
		opt.Step(net.Params())
	}
	d := net.Layers[0].(*Dense)
	if math.Abs(d.W.Data[0]-2) > 0.05 || math.Abs(d.W.Data[1]+3) > 0.05 || math.Abs(d.B.Data[0]-0.5) > 0.05 {
		t.Fatalf("regression did not converge: W=%v b=%v", d.W.Data, d.B.Data)
	}
}

// TestTrainXOR checks a nonlinear task trains through hidden layers.
func TestTrainXOR(t *testing.T) {
	r := rng.New(5)
	net := MLP("xor", []int{2, 8, 1}, ActTanh, r)
	opt := NewAdam(0.05)
	inputs := []float64{0, 0, 0, 1, 1, 0, 1, 1}
	targets := []float64{0, 1, 1, 0}
	var last float64
	for epoch := 0; epoch < 800; epoch++ {
		c := NewCtx(true)
		out := ad.Sigmoid(net.Forward(c, c.T.ConstMat(inputs, 4, 2)))
		loss := MSE(out, c.T.ConstMat(targets, 4, 1))
		last = loss.ScalarValue()
		ZeroGrads(net.Params())
		ad.Backward(loss)
		c.Harvest()
		opt.Step(net.Params())
	}
	if last > 0.02 {
		t.Fatalf("XOR did not converge: final loss %v", last)
	}
}

func TestSGDMomentum(t *testing.T) {
	// Minimize f(w) = (w-3)^2 with momentum SGD.
	p := NewParam("w", 1, 1)
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 200; i++ {
		p.ZeroGrad()
		p.Grad[0] = 2 * (p.Data[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.Data[0]-3) > 1e-3 {
		t.Fatalf("SGD+momentum did not converge: %v", p.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", 1, 2)
	p.Grad[0], p.Grad[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	if math.Abs(p.Grad[0]-0.6) > 1e-12 || math.Abs(p.Grad[1]-0.8) > 1e-12 {
		t.Fatalf("clipped grads = %v", p.Grad)
	}
	// Under the cap: untouched.
	p.Grad[0], p.Grad[1] = 0.1, 0.1
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad[0] != 0.1 {
		t.Fatal("clip modified small gradient")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rng.New(6)
	net := MLP("m", []int{3, 5, 2}, ActELU, r)
	var buf bytes.Buffer
	if err := SaveParams(&buf, net); err != nil {
		t.Fatal(err)
	}
	net2 := MLP("m", []int{3, 5, 2}, ActELU, rng.New(7))
	if err := LoadParams(&buf, net2); err != nil {
		t.Fatal(err)
	}
	for i, p := range net.Params() {
		q := net2.Params()[i]
		for j := range p.Data {
			if p.Data[j] != q.Data[j] {
				t.Fatal("round trip changed weights")
			}
		}
	}
}

func TestLoadParamsRejectsShapeMismatch(t *testing.T) {
	r := rng.New(8)
	net := MLP("m", []int{3, 5, 2}, ActELU, r)
	var buf bytes.Buffer
	if err := SaveParams(&buf, net); err != nil {
		t.Fatal(err)
	}
	other := MLP("m", []int{3, 6, 2}, ActELU, r)
	if err := LoadParams(&buf, other); err == nil {
		t.Fatal("LoadParams accepted mismatched architecture")
	}
}

func TestActivationKinds(t *testing.T) {
	c := NewCtx(false)
	x := c.T.Const([]float64{-1, 0, 1})
	for _, k := range []ActKind{ActIdentity, ActReLU, ActLeakyReLU, ActELU, ActSigmoid, ActTanh, ActSoftplus} {
		y := k.Apply(x)
		if y.Len() != 3 {
			t.Fatalf("%v changed length", k)
		}
		if k.String() == "" {
			t.Fatal("empty activation name")
		}
	}
}

func TestMLPDeterministicInit(t *testing.T) {
	a := MLP("m", []int{4, 8, 3}, ActReLU, rng.New(42))
	b := MLP("m", []int{4, 8, 3}, ActReLU, rng.New(42))
	for i, p := range a.Params() {
		q := b.Params()[i]
		for j := range p.Data {
			if p.Data[j] != q.Data[j] {
				t.Fatal("same seed produced different init")
			}
		}
	}
	if NumParams(a) != 4*8+8+8*3+3 {
		t.Fatalf("NumParams = %d", NumParams(a))
	}
}
