// Package nn builds feed-forward neural networks on top of the ad tape:
// dense layers, activations, optimizers and a training loop. It is the
// substrate for the DOTE DNN (Figure 2) and for the GAN extension (§6).
package nn

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/ad"
	"repro/internal/rng"
)

// Param is a trainable tensor with its accumulated gradient.
type Param struct {
	Name       string
	Data       []float64
	Grad       []float64
	Rows, Cols int
}

// NewParam allocates a zero parameter.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		Data: make([]float64, rows*cols),
		Grad: make([]float64, rows*cols),
		Rows: rows,
		Cols: cols,
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Ctx carries a tape plus the parameter bindings of one forward pass. When
// Train is true, parameters are bound as differentiable leaves and Harvest
// moves their tape gradients into Param.Grad; otherwise they are constants
// (the mode the analyzer uses: it differentiates with respect to the
// *input*, not the weights).
type Ctx struct {
	T     *ad.Tape
	Train bool
	binds []paramBind
}

type paramBind struct {
	p *Param
	v ad.Value
}

// NewCtx returns a context over a fresh tape.
func NewCtx(train bool) *Ctx {
	return &Ctx{T: ad.NewTape(), Train: train}
}

var ctxPool = sync.Pool{New: func() any { return &Ctx{T: ad.NewTape()} }}

// GetCtx returns a pooled context over a reset tape. Pair with PutCtx on the
// same goroutine path; anything read from the tape (Data, Grad) must be
// copied out before PutCtx, which recycles the tape's arenas.
func GetCtx(train bool) *Ctx {
	c := ctxPool.Get().(*Ctx)
	c.Train = train
	return c
}

// PutCtx resets the context's tape and bindings and returns it to the pool.
func PutCtx(c *Ctx) {
	c.T.Reset()
	c.binds = c.binds[:0]
	ctxPool.Put(c)
}

// Bind places p on the tape, recording it for Harvest when training.
func (c *Ctx) Bind(p *Param) ad.Value {
	if c.Train {
		v := c.T.VarMat(p.Data, p.Rows, p.Cols)
		c.binds = append(c.binds, paramBind{p, v})
		return v
	}
	return c.T.ConstMat(p.Data, p.Rows, p.Cols)
}

// Harvest accumulates tape gradients into each bound parameter's Grad.
func (c *Ctx) Harvest() {
	for _, b := range c.binds {
		g := b.v.Grad()
		if g == nil {
			continue
		}
		for i := range g {
			b.p.Grad[i] += g[i]
		}
	}
}

// Layer is one stage of a feed-forward network. Inputs and outputs are
// batches: rank-2 values of shape [batch, features].
type Layer interface {
	Forward(c *Ctx, x ad.Value) ad.Value
	Params() []*Param
}

// Dense is a fully connected layer: y = x·W + b with W [in, out].
type Dense struct {
	W, B *Param
}

// NewDense creates a dense layer with Xavier/Glorot-uniform initialization.
func NewDense(name string, in, out int, r *rng.RNG) *Dense {
	d := &Dense{
		W: NewParam(name+".W", in, out),
		B: NewParam(name+".b", out, 1),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W.Data {
		d.W.Data[i] = r.Uniform(-limit, limit)
	}
	return d
}

// Forward applies the affine map to a batch [batch, in].
func (d *Dense) Forward(c *Ctx, x ad.Value) ad.Value {
	if x.Cols() != d.W.Rows {
		panic(fmt.Sprintf("nn: Dense input has %d features, want %d", x.Cols(), d.W.Rows))
	}
	w := c.Bind(d.W)
	b := c.Bind(d.B)
	return ad.AddRowVector(ad.MatMul(x, w), b)
}

// Params returns the layer's trainable tensors.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Activation applies an elementwise nonlinearity.
type Activation struct {
	Kind ActKind
}

// ActKind names an activation function.
type ActKind int

// Supported activations.
const (
	ActIdentity ActKind = iota
	ActReLU
	ActLeakyReLU
	ActELU
	ActSigmoid
	ActTanh
	ActSoftplus
)

func (k ActKind) String() string {
	switch k {
	case ActIdentity:
		return "identity"
	case ActReLU:
		return "relu"
	case ActLeakyReLU:
		return "leaky-relu"
	case ActELU:
		return "elu"
	case ActSigmoid:
		return "sigmoid"
	case ActTanh:
		return "tanh"
	case ActSoftplus:
		return "softplus"
	default:
		return fmt.Sprintf("act(%d)", int(k))
	}
}

// Apply applies the activation to any value.
func (k ActKind) Apply(x ad.Value) ad.Value {
	switch k {
	case ActIdentity:
		return x
	case ActReLU:
		return ad.ReLU(x)
	case ActLeakyReLU:
		return ad.LeakyReLU(x, 0.01)
	case ActELU:
		return ad.ELU(x, 1)
	case ActSigmoid:
		return ad.Sigmoid(x)
	case ActTanh:
		return ad.Tanh(x)
	case ActSoftplus:
		return ad.Softplus(x)
	default:
		panic("nn: unknown activation")
	}
}

// Forward applies the nonlinearity.
func (a *Activation) Forward(c *Ctx, x ad.Value) ad.Value { return a.Kind.Apply(x) }

// Params returns nil: activations are parameter-free.
func (a *Activation) Params() []*Param { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// Forward runs all layers in order.
func (s *Sequential) Forward(c *Ctx, x ad.Value) ad.Value {
	for _, l := range s.Layers {
		x = l.Forward(c, x)
	}
	return x
}

// Params concatenates all layer parameters.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// MLP builds a multi-layer perceptron with the given layer sizes and hidden
// activation; the output layer is linear.
func MLP(name string, sizes []int, hidden ActKind, r *rng.RNG) *Sequential {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	var layers []Layer
	for i := 0; i+1 < len(sizes); i++ {
		layers = append(layers, NewDense(fmt.Sprintf("%s.%d", name, i), sizes[i], sizes[i+1], r))
		if i+2 < len(sizes) {
			layers = append(layers, &Activation{Kind: hidden})
		}
	}
	return &Sequential{Layers: layers}
}

// MSE returns the mean squared error between two equal-shape values.
func MSE(pred, target ad.Value) ad.Value {
	return ad.Mean(ad.Square(ad.Sub(pred, target)))
}

// NumParams returns the total scalar parameter count of a layer.
func NumParams(l Layer) int {
	n := 0
	for _, p := range l.Params() {
		n += len(p.Data)
	}
	return n
}
