package nn

import "repro/internal/ad"

// Minibatch is a reusable training workspace: flat row-major X/Y storage
// that grows once to the configured batch capacity and is refilled in place
// on every training step. Online learners (the core surrogate) call Reset +
// Add + MSEStep thousands of times per search; without a reusable workspace
// each step would allocate two fresh slices and churn the GC on the search
// hot path.
type Minibatch struct {
	in, out int
	n       int
	X, Y    []float64
}

// NewMinibatch returns a workspace for batches of up to capacity rows with
// the given input/output widths.
func NewMinibatch(in, out, capacity int) *Minibatch {
	if capacity < 1 {
		capacity = 1
	}
	return &Minibatch{
		in:  in,
		out: out,
		X:   make([]float64, 0, capacity*in),
		Y:   make([]float64, 0, capacity*out),
	}
}

// Reset empties the batch, keeping the backing storage.
func (b *Minibatch) Reset() {
	b.n = 0
	b.X = b.X[:0]
	b.Y = b.Y[:0]
}

// Len returns the number of rows currently in the batch.
func (b *Minibatch) Len() int { return b.n }

// Add appends one (x, y) sample. The values are copied, so callers may
// reuse their slices.
func (b *Minibatch) Add(x, y []float64) {
	b.X = append(b.X, x[:b.in]...)
	b.Y = append(b.Y, y[:b.out]...)
	b.n++
}

// AddScaled appends one sample with each input coordinate divided by the
// matching entry of scale (len(scale) == in). Normalization happens during
// the copy the batch makes anyway, so no scratch vector is needed.
func (b *Minibatch) AddScaled(x, y, scale []float64) {
	base := len(b.X)
	b.X = append(b.X, x[:b.in]...)
	for i := range scale {
		b.X[base+i] /= scale[i]
	}
	b.Y = append(b.Y, y[:b.out]...)
	b.n++
}

// MSEStep runs one optimizer step of min ‖net(X) − Y‖² over the batch using
// a pooled training context, and returns the pre-step loss. An empty batch
// is a no-op returning 0.
func MSEStep(net *Sequential, opt Optimizer, b *Minibatch) float64 {
	if b.n == 0 {
		return 0
	}
	c := GetCtx(true)
	defer PutCtx(c)
	pred := net.Forward(c, c.T.ConstMat(b.X, b.n, b.in))
	loss := MSE(pred, c.T.ConstMat(b.Y, b.n, b.out))
	ZeroGrads(net.Params())
	ad.Backward(loss)
	c.Harvest()
	opt.Step(net.Params())
	return loss.Data()[0]
}
