package milp

import (
	"container/heap"
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lp"
)

// This file is the warm-started branch-and-bound engine: clone-free node
// state, dual-simplex warm re-solves from retained parent bases, best-bound
// node selection with pseudo-cost branching, and deterministic wave-parallel
// subtree exploration. See DESIGN.md §15 for the invariants.
//
// Determinism contract. The solve result — Status, Objective, BestBound,
// Nodes, X, bit for bit — is independent of Options.Workers and of how the
// Executor schedules tasks, because:
//
//  1. Every node's LP relaxation is a pure function of (node bounds, parent
//     basis snapshot). A worker loads the parent snapshot (lp.LoadBasis
//     resets all pricing state) and ResolveBounds re-factorizes from a
//     clean LU, so nothing of the worker's history leaks into the pivots.
//  2. Node selection is synchronized: each wave pops a deterministic set of
//     best-bound nodes from the heap BEFORE any of them is solved, so the
//     frontier never depends on which solve finished first.
//  3. All cross-node state — incumbent updates, child creation, pseudo-cost
//     updates, open-bound tracking — mutates only in the fold step, which
//     walks the wave in pop order on the coordinating goroutine.
//
// WaveWidth, by contrast, IS part of the search definition: it decides how
// many frontier nodes are expanded per incumbent refresh.

// DefaultWaveWidth is the number of best-bound nodes solved per wave when
// Options.WaveWidth is zero. Eight keeps a typical pool busy without
// over-expanding the frontier past what an incumbent-guided sequential
// search would visit.
const DefaultWaveWidth = 8

// bbNode is one branch-and-bound node: a single-variable bound tightening
// relative to its parent, plus bookkeeping. Nodes live in one slice arena;
// the full bound set of a node is the chain of tightenings up to the root,
// applied and reverted incrementally by workers (no per-node maps, no LP
// clones).
type bbNode struct {
	parent int32
	kids   int32 // children not yet folded; basis is released at zero
	v      lp.VarID
	up     bool    // ceil-side child (pseudo-cost direction)
	lo, hi float64 // the tightened bounds for v at this node
	// relaxObj is the parent's relaxation objective — the proven bound on
	// everything below this node, and its best-bound heap priority.
	relaxObj float64
	// frac is the fractionality of the branching value in this node's
	// direction (val−⌊val⌋ down, ⌈val⌉−val up), the pseudo-cost divisor.
	frac  float64
	basis *lp.Basis // this node's optimal basis, once solved (nil before)
}

// basisPool recycles basis snapshots across nodes and solves; SaveBasis
// overwrites the buffers in full.
var basisPool = sync.Pool{New: func() any { return new(lp.Basis) }}

// bbSolverPool recycles revised-simplex solvers (and their factorization
// workspaces) across MILP solves. Stale warm state is harmless: every node
// solve first either loads a parent snapshot or invalidates the basis.
var bbSolverPool = sync.Pool{New: func() any { return lp.NewSolver() }}

// bbWorker is one worker's solving context: a private clone of the LP (so
// bound overlays never race), a pooled revised solver, and the slice-backed
// overlay stack of currently applied tightenings.
type bbWorker struct {
	prob    *lp.Problem
	solver  *lp.Solver
	base    lp.SolverStatsSnapshot
	applied []int32      // node ids whose tightenings are applied, root-side first
	saved   [][2]float64 // bounds each applied entry overwrote
	path    []int32      // scratch for the root→node chain
}

// moveTo mutates the worker's problem from its current overlay to node id's:
// revert the applied suffix past the common prefix (restoring saved bounds
// in reverse, stack discipline), then apply the new tail recording what it
// overwrites.
func (w *bbWorker) moveTo(nodes []bbNode, id int32) {
	path := w.path[:0]
	for n := id; n > 0; n = nodes[n].parent {
		path = append(path, n)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	w.path = path
	k := 0
	for k < len(path) && k < len(w.applied) && w.applied[k] == path[k] {
		k++
	}
	for i := len(w.applied) - 1; i >= k; i-- {
		nd := &nodes[w.applied[i]]
		w.prob.SetVarBounds(nd.v, w.saved[i][0], w.saved[i][1])
	}
	w.applied = w.applied[:k]
	w.saved = w.saved[:k]
	for _, n := range path[k:] {
		nd := &nodes[n]
		lo, hi := w.prob.VarBounds(nd.v)
		w.applied = append(w.applied, n)
		w.saved = append(w.saved, [2]float64{lo, hi})
		w.prob.SetVarBounds(nd.v, nd.lo, nd.hi)
	}
}

// solveNode solves node id's LP relaxation warm from the parent's basis
// snapshot (cold when the parent has none, e.g. the root) and, on an
// optimal finish, snapshots this node's basis for its future children.
func (w *bbWorker) solveNode(nodes []bbNode, id int32) *lp.Solution {
	w.moveTo(nodes, id)
	nd := &nodes[id]
	var pb *lp.Basis
	if nd.parent >= 0 {
		pb = nodes[nd.parent].basis
	}
	var s *lp.Solution
	if pb != nil && w.solver.LoadBasis(pb) {
		s = w.solver.ResolveBounds(w.prob)
	} else {
		// No usable parent snapshot (the root, or a parent whose basis save
		// failed): drop all warm state so the cold solve is identical no
		// matter which pooled solver runs it.
		w.solver.InvalidateBasis()
		s = w.solver.Solve(w.prob)
	}
	if s.Status == lp.StatusOptimal {
		b := basisPool.Get().(*lp.Basis)
		if w.solver.SaveBasis(b) {
			nd.basis = b
		} else {
			basisPool.Put(b)
		}
	}
	return s
}

// pseudo holds pseudo-cost branching state: per-variable per-direction mean
// objective degradation per unit of fractionality, with the global mean as
// the prior for unobserved (variable, direction) pairs. Updated only during
// fold, so it is deterministic.
type pseudo struct {
	downSum, upSum []float64
	downN, upN     []int32
	totSum         float64
	totN           int64
}

func newPseudo(nvars int) *pseudo {
	return &pseudo{
		downSum: make([]float64, nvars),
		upSum:   make([]float64, nvars),
		downN:   make([]int32, nvars),
		upN:     make([]int32, nvars),
	}
}

func (pc *pseudo) observe(v lp.VarID, up bool, unitCost float64) {
	if up {
		pc.upSum[v] += unitCost
		pc.upN[v]++
	} else {
		pc.downSum[v] += unitCost
		pc.downN[v]++
	}
	pc.totSum += unitCost
	pc.totN++
}

// cost returns the estimated degradation per unit fractionality in one
// direction, falling back to the global mean (then 1) with no observations.
func (pc *pseudo) cost(v lp.VarID, up bool) float64 {
	if up {
		if n := pc.upN[v]; n > 0 {
			return pc.upSum[v] / float64(n)
		}
	} else {
		if n := pc.downN[v]; n > 0 {
			return pc.downSum[v] / float64(n)
		}
	}
	if pc.totN > 0 {
		return pc.totSum / float64(pc.totN)
	}
	return 1
}

// nodeHeap is the best-bound frontier: better relaxObj first (objective
// direction), ties to the HIGHER node id. Newer ids are deeper in the tree,
// so tie-breaking toward them recovers the legacy engine's diving behavior
// on bound plateaus and finds incumbents sooner.
type nodeHeap struct {
	nodes *[]bbNode
	max   bool
	ids   []int32
}

func (h *nodeHeap) Len() int { return len(h.ids) }
func (h *nodeHeap) Less(i, j int) bool {
	a := (*h.nodes)[h.ids[i]].relaxObj
	b := (*h.nodes)[h.ids[j]].relaxObj
	if a != b {
		if h.max {
			return a > b
		}
		return a < b
	}
	return h.ids[i] > h.ids[j]
}
func (h *nodeHeap) Swap(i, j int) { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *nodeHeap) Push(x any)    { h.ids = append(h.ids, x.(int32)) }
func (h *nodeHeap) Pop() any {
	n := len(h.ids)
	x := h.ids[n-1]
	h.ids = h.ids[:n-1]
	return x
}

// solveWarm is the warm-started wave-parallel engine behind SolveCtx.
func (p *Problem) solveWarm(ctx context.Context, start time.Time, opts Options) *Solution {
	better := p.better
	worstObj := p.worstObjective()
	deadline := ctxDeadline(ctx, start, opts)

	sol := &Solution{Status: NoIncumbent, Objective: worstObj, BestBound: -worstObj}

	nodes := make([]bbNode, 1, 64)
	nodes[0] = bbNode{parent: -1, v: -1, relaxObj: -worstObj}
	h := &nodeHeap{nodes: &nodes, max: p.sense == lp.Maximize, ids: []int32{0}}
	pc := newPseudo(p.LP.NumVars())

	incumbent := worstObj
	var incumbentX []float64
	budgetBreak := false
	openBound := worstObj
	haveOpen := false
	trackOpen := func(b float64) {
		if !haveOpen || better(b, openBound) {
			openBound, haveOpen = b, true
		}
	}
	unresolved := 0

	// Worker contexts are created lazily: sequential solves touch only
	// workers[0]. Slot k is only ever used by task index k of a wave, so
	// creation inside a task is race-free; cloning the base problem reads
	// shared immutable state only.
	workers := make([]*bbWorker, opts.Workers)
	getWorker := func(k int) *bbWorker {
		if workers[k] == nil {
			s := bbSolverPool.Get().(*lp.Solver)
			s.Method = lp.MethodRevised
			prob := p.LP.Clone()
			prob.Deadline = deadline
			workers[k] = &bbWorker{prob: prob, solver: s, base: s.Stats.Snapshot()}
		}
		return workers[k]
	}
	defer func() {
		for _, w := range workers {
			if w == nil {
				continue
			}
			d := w.solver.Stats.Snapshot().Sub(w.base)
			sol.NodeResolves += int(d.BoundHits)
			sol.DualPivots += int(d.DualPivots)
			sol.ColdFallbacks += int(d.ColdSolves)
			bbSolverPool.Put(w.solver)
		}
	}()

	// release drops one pending-child reference from node id, recycling its
	// basis snapshot once no unfolded child can still warm-start from it.
	release := func(id int32) {
		if id < 0 {
			return
		}
		nd := &nodes[id]
		nd.kids--
		if nd.kids <= 0 && nd.basis != nil {
			basisPool.Put(nd.basis)
			nd.basis = nil
		}
	}

	// effBounds resolves v's bounds at node id: the nearest tightening of v
	// on the root chain, else the base problem's bounds.
	effBounds := func(id int32, v lp.VarID) (lo, hi float64) {
		for n := id; n > 0; n = nodes[n].parent {
			if nodes[n].v == v {
				return nodes[n].lo, nodes[n].hi
			}
		}
		return p.LP.VarBounds(v)
	}

	wave := make([]int32, 0, opts.WaveWidth)
	solved := make([]*lp.Solution, opts.WaveWidth)
	pruned := make([]bool, opts.WaveWidth)
	jobs := make([]int, 0, opts.WaveWidth)

	for h.Len() > 0 {
		if err := ctx.Err(); err != nil {
			budgetBreak = true
			sol.StopReason = ctxStop(err)
			break
		}
		if sol.Nodes >= opts.MaxNodes {
			budgetBreak = true
			sol.StopReason = StopNodeBudget
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			budgetBreak = true
			sol.StopReason = StopDeadline
			break
		}

		// Pop the wave: the W best-bound nodes, fixed before any solve.
		W := opts.WaveWidth
		if r := opts.MaxNodes - sol.Nodes; W > r {
			W = r
		}
		if W > h.Len() {
			W = h.Len()
		}
		wave = wave[:0]
		for i := 0; i < W; i++ {
			wave = append(wave, heap.Pop(h).(int32))
		}
		sol.Nodes += W

		// Pre-solve prune against the wave-start incumbent (pruned pops
		// still count as explored nodes, matching the legacy engine).
		jobs = jobs[:0]
		for i, id := range wave {
			solved[i] = nil
			pruned[i] = incumbentX != nil && !better(nodes[id].relaxObj, incumbent)
			if !pruned[i] {
				jobs = append(jobs, i)
			}
		}

		// Solve the wave. Task k owns worker k; an atomic cursor deals
		// jobs so a long solve never stalls the rest of the wave.
		if nw := min(opts.Workers, len(jobs)); nw > 1 {
			var next atomic.Int64
			var wg sync.WaitGroup
			wg.Add(nw)
			for k := 0; k < nw; k++ {
				k := k
				task := func() {
					defer wg.Done()
					w := getWorker(k)
					for {
						j := int(next.Add(1)) - 1
						if j >= len(jobs) {
							return
						}
						ji := jobs[j]
						solved[ji] = w.solveNode(nodes, wave[ji])
					}
				}
				if opts.Executor != nil {
					opts.Executor.Run(task)
				} else {
					go task()
				}
			}
			wg.Wait()
		} else if len(jobs) > 0 {
			w := getWorker(0)
			for _, ji := range jobs {
				solved[ji] = w.solveNode(nodes, wave[ji])
			}
		}

		// Fold in pop order: every cross-node mutation happens here.
		for i, id := range wave {
			nd := &nodes[id]
			if pruned[i] {
				release(nd.parent)
				continue
			}
			s := solved[i]
			switch s.Status {
			case lp.StatusInfeasible:
				release(nd.parent)
				continue
			case lp.StatusUnbounded:
				unresolved++
				trackOpen(nd.relaxObj)
				release(nd.parent)
				continue
			case lp.StatusIterLimit:
				sol.IterLimited++
				unresolved++
				trackOpen(nd.relaxObj)
				release(nd.parent)
				continue
			}
			// Pseudo-cost observation: how much this child's relaxation
			// degraded per unit of the fractionality it branched away.
			if nd.parent >= 0 && nd.frac > 1e-12 {
				pc.observe(nd.v, nd.up, math.Abs(s.Objective-nd.relaxObj)/nd.frac)
			}
			if incumbentX != nil && !better(s.Objective, incumbent) {
				release(id) // own basis: no children will come
				release(nd.parent)
				continue
			}
			// Select the branching variable: best pseudo-cost product score,
			// most-fractional before any observations exist.
			branchVar := lp.VarID(-1)
			bestScore := 0.0
			branchVal := 0.0
			for _, v := range p.intVars {
				val := s.Value(v)
				frac := math.Abs(val - math.Round(val))
				if frac <= opts.IntTol {
					continue
				}
				fd := val - math.Floor(val)
				fu := 1 - fd
				var score float64
				if pc.totN > 0 {
					score = math.Max(fd*pc.cost(v, false), 1e-9) * math.Max(fu*pc.cost(v, true), 1e-9)
				} else {
					score = math.Min(fd, fu)
				}
				if branchVar < 0 || score > bestScore {
					branchVar, bestScore, branchVal = v, score, val
				}
			}
			if branchVar < 0 {
				// Integer feasible: new incumbent (first-in-fold-order wins
				// ties, part of the determinism contract).
				if incumbentX == nil || better(s.Objective, incumbent) {
					incumbent = s.Objective
					incumbentX = append(incumbentX[:0], s.X...)
				}
				release(id)
				release(nd.parent)
				continue
			}
			lo, hi := effBounds(id, branchVar)
			fd := branchVal - math.Floor(branchVal)
			kids := int32(0)
			if f := math.Floor(branchVal); f >= lo {
				nodes = append(nodes, bbNode{
					parent: id, v: branchVar, lo: lo, hi: f,
					relaxObj: s.Objective, frac: fd,
				})
				heap.Push(h, int32(len(nodes)-1))
				kids++
			}
			if c := math.Ceil(branchVal); c <= hi {
				nodes = append(nodes, bbNode{
					parent: id, v: branchVar, up: true, lo: c, hi: hi,
					relaxObj: s.Objective, frac: 1 - fd,
				})
				heap.Push(h, int32(len(nodes)-1))
				kids++
			}
			// nd may be stale: the appends above can have grown the arena.
			nodes[id].kids = kids
			if kids == 0 {
				release(id)
			}
			release(nodes[id].parent)
		}
	}

	sol.Elapsed = time.Since(start)
	// Exhaustion semantics are identical to the cold-clone engine: the heap
	// drained without a budget break (a break always precedes the pops, so
	// the unexplored frontier is exactly the heap's remnant).
	exhausted := h.Len() == 0 && !budgetBreak
	proven := exhausted && unresolved == 0
	switch {
	case incumbentX != nil && proven:
		sol.Status = Optimal
	case incumbentX != nil:
		sol.Status = Feasible
	case proven:
		sol.Status = Infeasible
	default:
		sol.Status = NoIncumbent
	}
	if !budgetBreak {
		sol.StopReason = ""
	}
	if incumbentX != nil {
		sol.Objective = incumbent
		sol.X = incumbentX
	}
	for _, id := range h.ids {
		trackOpen(nodes[id].relaxObj)
	}
	switch {
	case incumbentX != nil && haveOpen && better(openBound, incumbent):
		sol.BestBound = openBound
	case incumbentX != nil:
		sol.BestBound = incumbent
	case haveOpen:
		sol.BestBound = openBound
	default:
		sol.BestBound = worstObj
	}
	// Recycle every basis still held by the arena (heap remnants and nodes
	// whose children were never folded).
	for i := range nodes {
		if nodes[i].basis != nil {
			basisPool.Put(nodes[i].basis)
			nodes[i].basis = nil
		}
	}
	return sol
}
