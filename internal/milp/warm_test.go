package milp

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/rng"
)

// goExecutor is the simplest possible Executor: one goroutine per task.
type goExecutor struct{}

func (goExecutor) Run(task func()) { go task() }

// serialExecutor runs every task inline, in submission order — a
// pathological schedule (full serialization) that a correct engine must not
// be able to distinguish from any other. Safe here because wave tasks never
// block on one another: the first task drains the shared job cursor and the
// rest return immediately.
type serialExecutor struct{}

func (serialExecutor) Run(task func()) { task() }

// randomMILP builds a bounded random MILP: integer variables over small
// boxes, a few continuous variables, and constraints anchored on a point
// inside the bounds so most instances are feasible — but not all, and the
// infeasible ones pin the Status equivalence too. Everything is boxed, so
// no relaxation is unbounded and budget-free solves always exhaust.
func randomMILP(nInt, nCont, cons int, seed uint64) *Problem {
	r := rng.New(seed)
	p := NewProblem()
	ids := make([]lp.VarID, 0, nInt+nCont)
	anchor := make([]float64, 0, nInt+nCont)
	for i := 0; i < nInt; i++ {
		if r.Intn(3) == 0 {
			ids = append(ids, p.AddBinary(""))
			anchor = append(anchor, float64(r.Intn(2)))
		} else {
			hi := float64(2 + r.Intn(5))
			ids = append(ids, p.AddInteger("", 0, hi))
			anchor = append(anchor, math.Round(r.Uniform(0, hi)))
		}
	}
	for i := 0; i < nCont; i++ {
		lo := r.Uniform(-2, 0)
		ids = append(ids, p.AddVariable("", lo, lo+r.Uniform(1, 4)))
		anchor = append(anchor, lo+0.5)
	}
	obj := lp.NewExpr()
	for _, v := range ids {
		obj.Add(r.Uniform(-2, 3), v)
	}
	if r.Intn(2) == 0 {
		p.SetObjective(lp.Maximize, obj)
	} else {
		p.SetObjective(lp.Minimize, obj)
	}
	for c := 0; c < cons; c++ {
		e := lp.NewExpr()
		lhs := 0.0
		for i, v := range ids {
			if r.Float64() < 0.5 {
				co := r.Uniform(-1, 2)
				e.Add(co, v)
				lhs += co * anchor[i]
			}
		}
		switch r.Intn(3) {
		case 0:
			p.AddConstraint("", e, lp.LE, lhs+r.Uniform(0.2, 2))
		case 1:
			p.AddConstraint("", e, lp.GE, lhs-r.Uniform(0.2, 2))
		default:
			p.AddConstraint("", e, lp.EQ, lhs)
		}
	}
	// A slice of instances is made integer-infeasible on purpose: pinning one
	// integer variable into a fractional window keeps the LP relaxation
	// feasible while no integral point exists, so the suite also exercises
	// the engines' infeasibility proofs (including warm dual verdicts).
	if nInt > 0 && r.Float64() < 0.2 {
		v := ids[r.Intn(nInt)]
		e := lp.NewExpr()
		e.Add(1, v)
		p.AddConstraint("", e, lp.GE, 0.3)
		e2 := lp.NewExpr()
		e2.Add(1, v)
		p.AddConstraint("", e2, lp.LE, 0.7)
	}
	return p
}

// TestWarmMatchesColdCloneRandomized is the engine equivalence suite: on
// budget-free randomized MILPs the warm-started engine must agree with the
// legacy cold-clone engine — which solves every node with the dense-oracle
// LP path at these sizes — on Status, and (when optimal) on the incumbent
// objective within 1e-9 and on BestBound == Objective.
func TestWarmMatchesColdCloneRandomized(t *testing.T) {
	shapes := []struct{ nInt, nCont, cons int }{
		{4, 0, 3}, {6, 2, 4}, {8, 0, 6}, {10, 3, 8},
	}
	statuses := map[Status]int{}
	for _, sh := range shapes {
		for seed := uint64(1); seed <= 30; seed++ {
			p := randomMILP(sh.nInt, sh.nCont, sh.cons, seed*131+uint64(sh.nInt))
			warm := p.Solve(Options{})
			cold := p.Solve(Options{ColdClone: true})
			statuses[warm.Status]++
			if warm.Status != cold.Status {
				t.Fatalf("%+v seed %d: warm %v, cold %v", sh, seed, warm.Status, cold.Status)
			}
			if warm.StopReason != "" || cold.StopReason != "" {
				t.Fatalf("%+v seed %d: budget-free solve reported stop reasons %q/%q",
					sh, seed, warm.StopReason, cold.StopReason)
			}
			switch warm.Status {
			case Optimal:
				d := math.Abs(warm.Objective-cold.Objective) /
					math.Max(1, math.Max(math.Abs(warm.Objective), math.Abs(cold.Objective)))
				if d > 1e-9 {
					t.Fatalf("%+v seed %d: warm obj %.15g, cold %.15g (rel %.3g)",
						sh, seed, warm.Objective, cold.Objective, d)
				}
				if warm.BestBound != warm.Objective {
					t.Fatalf("%+v seed %d: warm BestBound %v != Objective %v",
						sh, seed, warm.BestBound, warm.Objective)
				}
			case Infeasible:
				if warm.BestBound != cold.BestBound {
					t.Fatalf("%+v seed %d: infeasible BestBound %v vs %v",
						sh, seed, warm.BestBound, cold.BestBound)
				}
			default:
				t.Fatalf("%+v seed %d: budget-free solve ended %v", sh, seed, warm.Status)
			}
		}
	}
	if statuses[Optimal] == 0 || statuses[Infeasible] == 0 {
		t.Fatalf("suite did not cover both terminal statuses: %v", statuses)
	}
}

// TestWarmParallelDeterminism is the scheduling-independence contract:
// Status, Objective, BestBound, Nodes, and X must be bitwise identical for
// any worker count and for pool-executed solves, given the same WaveWidth.
func TestWarmParallelDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		p := randomMILP(9, 2, 6, seed*977)
		ref := p.Solve(Options{Workers: 1})
		configs := []Options{
			{Workers: 2},
			{Workers: 8},
			{Workers: 4, Executor: goExecutor{}},
			{Workers: 4, Executor: serialExecutor{}},
		}
		for ci, o := range configs {
			got := p.Solve(o)
			if got.Status != ref.Status || got.Nodes != ref.Nodes ||
				got.Objective != ref.Objective || got.BestBound != ref.BestBound {
				t.Fatalf("seed %d config %d: got %v/%d/%x/%x, want %v/%d/%x/%x",
					seed, ci, got.Status, got.Nodes, got.Objective, got.BestBound,
					ref.Status, ref.Nodes, ref.Objective, ref.BestBound)
			}
			if len(got.X) != len(ref.X) {
				t.Fatalf("seed %d config %d: X lengths %d vs %d", seed, ci, len(got.X), len(ref.X))
			}
			for j := range got.X {
				if got.X[j] != ref.X[j] {
					t.Fatalf("seed %d config %d: X[%d] = %x, want %x (not bitwise)",
						seed, ci, j, got.X[j], ref.X[j])
				}
			}
		}
	}
}

// TestWarmWaveWidthIsSearchDefining documents the flip side of the
// determinism contract: WaveWidth is part of the search definition, and
// repeated solves at ANY fixed width are self-consistent.
func TestWarmWaveWidthIsSearchDefining(t *testing.T) {
	p := fractionalKnapsack(12, 3)
	for _, ww := range []int{1, 4, 8, 16} {
		a := p.Solve(Options{WaveWidth: ww})
		b := p.Solve(Options{WaveWidth: ww, Workers: 8})
		if a.Status != Optimal || b.Status != Optimal {
			t.Fatalf("width %d: statuses %v/%v", ww, a.Status, b.Status)
		}
		if a.Objective != b.Objective || a.Nodes != b.Nodes {
			t.Fatalf("width %d: obj %v/%v nodes %d/%d", ww, a.Objective, b.Objective, a.Nodes, b.Nodes)
		}
	}
}

// TestSolveCtxCancellation pins the context satellite: an already-cancelled
// or expired context stops the solve before the first wave with the
// matching StopReason, and a deadline mid-solve surfaces as StopDeadline
// with the best-so-far solution intact.
func TestSolveCtxCancellation(t *testing.T) {
	p := fractionalKnapsack(14, 9)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	s := p.SolveCtx(cancelled, Options{})
	if s.Nodes != 0 || s.Status != NoIncumbent || s.StopReason != StopCancelled {
		t.Fatalf("cancelled ctx: nodes %d status %v reason %q", s.Nodes, s.Status, s.StopReason)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	s = p.SolveCtx(expired, Options{})
	if s.Nodes != 0 || s.StopReason != StopDeadline {
		t.Fatalf("expired ctx: nodes %d reason %q", s.Nodes, s.StopReason)
	}

	// A context deadline must also bound the node solves themselves (it is
	// folded into the LP deadline), not just the wave boundaries.
	ctx, cancel3 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel3()
	s = p.SolveCtx(ctx, Options{MaxNodes: 10_000_000})
	if s.StopReason != StopDeadline && s.StopReason != "" {
		t.Fatalf("timeout ctx: reason %q", s.StopReason)
	}

	// The cold-clone oracle honors the same contract.
	s = p.SolveCtx(cancelled, Options{ColdClone: true})
	if s.Nodes != 0 || s.StopReason != StopCancelled {
		t.Fatalf("cancelled ctx (cold clone): nodes %d reason %q", s.Nodes, s.StopReason)
	}
}

// TestWarmTelemetry checks the node-telemetry satellite: warm resolves and
// cold fallbacks are counted on the Solution and mirrored into obs.
func TestWarmTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	p := fractionalKnapsack(12, 7)
	s := p.Solve(Options{Obs: reg})
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if s.NodeResolves == 0 {
		t.Fatal("NodeResolves = 0: the warm path never engaged")
	}
	if s.ColdFallbacks == 0 {
		t.Fatal("ColdFallbacks = 0: even the root must be counted as a cold solve")
	}
	if s.DualPivots == 0 {
		t.Fatal("DualPivots = 0: bound tightenings should need dual repair on this instance")
	}
	if got := reg.Counter("milp.nodes").Value(); got != int64(s.Nodes) {
		t.Fatalf("milp.nodes = %d, want %d", got, s.Nodes)
	}
	if got := reg.Counter("milp.warm_hits").Value(); got != int64(s.NodeResolves) {
		t.Fatalf("milp.warm_hits = %d, want %d", got, s.NodeResolves)
	}
	// Warm solves should dominate: every non-root conclusive node resolves
	// from its parent basis on this well-behaved instance.
	if s.NodeResolves < s.ColdFallbacks {
		t.Fatalf("warm resolves %d < cold fallbacks %d", s.NodeResolves, s.ColdFallbacks)
	}
}

// TestConcurrentParallelSolves is the in-package -race leg: many concurrent
// PARALLEL solves (each spawning wave workers that share the package-level
// solver and basis pools) must all agree with the sequential reference. The
// variant sharing one work-stealing serve.Pool lives in internal/serve
// (TestPoolBackedMILPDeterminism) — serve cannot be imported from here
// without a cycle through whitebox.
func TestConcurrentParallelSolves(t *testing.T) {
	base := randomMILP(8, 2, 6, 42)
	ref := base.Solve(Options{Workers: 1})

	const searches = 8
	var wg sync.WaitGroup
	sols := make([]*Solution, searches)
	for i := 0; i < searches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sols[i] = base.Clone().Solve(Options{Workers: 3})
		}(i)
	}
	wg.Wait()
	for i, s := range sols {
		if s.Status != ref.Status || s.Objective != ref.Objective ||
			s.BestBound != ref.BestBound || s.Nodes != ref.Nodes {
			t.Fatalf("search %d: %v/%v/%v/%d, want %v/%v/%v/%d",
				i, s.Status, s.Objective, s.BestBound, s.Nodes,
				ref.Status, ref.Objective, ref.BestBound, ref.Nodes)
		}
	}
}
