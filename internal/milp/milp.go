// Package milp implements mixed-integer linear programming by
// branch-and-bound over the lp simplex. It is the engine behind the
// MetaOpt-style white-box baseline (internal/whitebox): white-box analyzers
// encode the entire learning-enabled pipeline — DNN included — as one joint
// optimization, which is exactly the approach whose scalability §3.1 shows
// breaking down.
package milp

import (
	"math"
	"time"

	"repro/internal/lp"
)

// Status describes a MILP solve outcome.
type Status int

const (
	// Optimal means the tree was exhausted and the incumbent is optimal.
	Optimal Status = iota
	// Feasible means an incumbent exists but the budget ran out before
	// optimality was proven.
	Feasible
	// NoIncumbent means the budget ran out with no integer-feasible point
	// found — the white-box failure mode of Tables 1 and 2.
	NoIncumbent
	// Infeasible means the problem has no feasible point at all.
	Infeasible
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case NoIncumbent:
		return "no-incumbent"
	case Infeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// Problem is a MILP: an LP plus integrality requirements.
type Problem struct {
	LP       *lp.Problem
	intVars  []lp.VarID
	sense    lp.Sense
	haveObj  bool
	objExpr  *lp.Expr
	intIndex map[lp.VarID]bool
}

// NewProblem returns an empty MILP.
func NewProblem() *Problem {
	return &Problem{LP: lp.NewProblem(), intIndex: make(map[lp.VarID]bool)}
}

// AddVariable adds a continuous variable.
func (p *Problem) AddVariable(name string, lo, hi float64) lp.VarID {
	return p.LP.AddVariable(name, lo, hi)
}

// AddInteger adds an integer variable with the given bounds.
func (p *Problem) AddInteger(name string, lo, hi float64) lp.VarID {
	v := p.LP.AddVariable(name, lo, hi)
	p.intVars = append(p.intVars, v)
	p.intIndex[v] = true
	return v
}

// AddBinary adds a 0/1 variable.
func (p *Problem) AddBinary(name string) lp.VarID {
	return p.AddInteger(name, 0, 1)
}

// AddConstraint forwards to the underlying LP.
func (p *Problem) AddConstraint(name string, expr *lp.Expr, rel lp.Rel, rhs float64) {
	p.LP.AddConstraint(name, expr, rel, rhs)
}

// SetObjective sets the optimization goal.
func (p *Problem) SetObjective(sense lp.Sense, expr *lp.Expr) {
	p.sense = sense
	p.objExpr = expr
	p.haveObj = true
	p.LP.SetObjective(sense, expr)
}

// Options bound the branch-and-bound effort.
type Options struct {
	// MaxNodes caps the number of explored nodes (0 = 100000).
	MaxNodes int
	// MaxTime caps wall-clock time (0 = unlimited).
	MaxTime time.Duration
	// IntTol is the integrality tolerance (0 = 1e-6).
	IntTol float64
}

// Solution is a MILP solve result.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Nodes is the number of branch-and-bound nodes explored; Elapsed the
	// wall time spent.
	Nodes   int
	Elapsed time.Duration
	// BestBound is the proven bound on the optimum at termination: the best
	// objective any unexplored subtree could still attain, folded with the
	// incumbent. When Status == Optimal it equals Objective exactly; when the
	// budget ran out it brackets the optimum from the other side (an upper
	// bound for maximization, lower for minimization), so callers can report
	// an optimality gap. A solve that proved infeasibility reports the worst
	// objective value (-Inf for maximization, +Inf for minimization).
	BestBound float64
	// IterLimited counts nodes whose LP relaxation hit the simplex iteration
	// cap or deadline and had to be pruned unresolved. Any nonzero count
	// means an unconverged relaxation may be hiding the true optimum, so the
	// solver never claims Optimal or Infeasible alongside it.
	IterLimited int
}

// Gap returns the relative optimality gap |BestBound − Objective| scaled by
// max(1, |Objective|). Zero when the solve proved optimality; NaN/Inf when
// no finite bound was established (e.g. the root was never resolved).
func (s *Solution) Gap() float64 {
	scale := math.Abs(s.Objective)
	if scale < 1 {
		scale = 1
	}
	return math.Abs(s.BestBound-s.Objective) / scale
}

type bbNode struct {
	// bound overrides: variable -> (lo, hi)
	bounds map[lp.VarID][2]float64
	// parent relaxation objective, used for best-first ordering
	relaxObj float64
}

// Solve runs branch and bound.
func (p *Problem) Solve(opts Options) *Solution {
	start := time.Now()
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 100000
	}
	if opts.IntTol == 0 {
		opts.IntTol = 1e-6
	}
	better := func(a, b float64) bool {
		if p.sense == lp.Maximize {
			return a > b
		}
		return a < b
	}
	worstObj := math.Inf(-1)
	if p.sense == lp.Minimize {
		worstObj = math.Inf(1)
	}

	sol := &Solution{Status: NoIncumbent, Objective: worstObj, BestBound: -worstObj}
	// Stack-based DFS with best-relaxation-first tie ordering via simple
	// append/pop (children pushed so the better bound pops first).
	stack := []bbNode{{bounds: map[lp.VarID][2]float64{}, relaxObj: -worstObj}}
	incumbent := worstObj
	var incumbentX []float64
	// budgetBreak records that the loop exited on a node or time budget
	// rather than by draining the stack — the two must not be conflated: a
	// tree that empties on exactly the MaxNodes-th node IS exhausted.
	budgetBreak := false
	// openBound accumulates the best (in the objective direction)
	// parent-relaxation bound over every subtree the search left unresolved:
	// nodes pruned with unconverged or unbounded relaxations, and nodes still
	// on the stack at a budget break. Any optimum hiding in those subtrees is
	// no better than openBound.
	openBound := worstObj
	haveOpen := false
	trackOpen := func(b float64) {
		if !haveOpen || better(b, openBound) {
			openBound, haveOpen = b, true
		}
	}
	// unresolved counts subtrees pruned without a conclusive relaxation
	// (iteration/deadline-limited or unbounded): while nonzero, a drained
	// stack proves neither optimality nor infeasibility.
	unresolved := 0

	for len(stack) > 0 {
		if sol.Nodes >= opts.MaxNodes {
			budgetBreak = true
			break
		}
		if opts.MaxTime > 0 && time.Since(start) >= opts.MaxTime {
			budgetBreak = true
			break
		}
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sol.Nodes++

		// Prune by bound before solving if the parent relaxation is already
		// no better than the incumbent.
		if incumbentX != nil && !better(node.relaxObj, incumbent) {
			continue
		}
		relax := p.LP.Clone()
		if opts.MaxTime > 0 {
			relax.Deadline = start.Add(opts.MaxTime)
		}
		for v, b := range node.bounds {
			relax.SetVarBounds(v, b[0], b[1])
		}
		s := relax.Solve()
		switch s.Status {
		case lp.StatusInfeasible:
			continue
		case lp.StatusUnbounded:
			// An unbounded relaxation cannot prove anything about its
			// subtree; prune it but remember that the tree was not fully
			// resolved, bounded only by the parent relaxation.
			unresolved++
			trackOpen(node.relaxObj)
			continue
		case lp.StatusIterLimit:
			// The relaxation did not converge: its subtree may hide the true
			// optimum, so the terminal status must not claim Optimal (or
			// Infeasible) once the stack drains. The parent relaxation still
			// bounds whatever the subtree holds.
			sol.IterLimited++
			unresolved++
			trackOpen(node.relaxObj)
			continue
		}
		if incumbentX != nil && !better(s.Objective, incumbent) {
			continue // bound prune
		}
		// Find the most fractional integer variable.
		branchVar := lp.VarID(-1)
		worstFrac := opts.IntTol
		for _, v := range p.intVars {
			val := s.Value(v)
			frac := math.Abs(val - math.Round(val))
			if frac > worstFrac {
				worstFrac = frac
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integer feasible: new incumbent.
			if incumbentX == nil || better(s.Objective, incumbent) {
				incumbent = s.Objective
				incumbentX = append([]float64{}, s.X...)
			}
			continue
		}
		val := s.Value(branchVar)
		lo, hi := p.LP.VarBounds(branchVar)
		if b, ok := node.bounds[branchVar]; ok {
			lo, hi = b[0], b[1]
		}
		down := cloneBounds(node.bounds)
		down[branchVar] = [2]float64{lo, math.Floor(val)}
		up := cloneBounds(node.bounds)
		up[branchVar] = [2]float64{math.Ceil(val), hi}
		// Push both children; explore the "down" branch first by pushing it
		// last (LIFO).
		stack = append(stack, bbNode{bounds: up, relaxObj: s.Objective})
		stack = append(stack, bbNode{bounds: down, relaxObj: s.Objective})
	}

	sol.Elapsed = time.Since(start)
	// Exhaustion is "the stack drained without a budget break" — checking
	// Nodes < MaxNodes instead would misclassify a tree that empties on
	// exactly the MaxNodes-th node. A break always precedes the pop, so the
	// unexplored frontier is exactly what remains on the stack.
	exhausted := len(stack) == 0 && !budgetBreak
	proven := exhausted && unresolved == 0
	switch {
	case incumbentX != nil && proven:
		sol.Status = Optimal
	case incumbentX != nil:
		sol.Status = Feasible
	case proven:
		// Tree exhausted with every relaxation conclusive and no integral
		// point: the MILP is infeasible.
		sol.Status = Infeasible
	default:
		sol.Status = NoIncumbent
	}
	if incumbentX != nil {
		sol.Objective = incumbent
		sol.X = incumbentX
	}
	// BestBound: fold the open frontier into the incumbent. Subtrees pruned
	// by bound are dominated by the incumbent and need no tracking.
	for _, nd := range stack {
		trackOpen(nd.relaxObj)
	}
	switch {
	case incumbentX != nil && haveOpen && better(openBound, incumbent):
		sol.BestBound = openBound
	case incumbentX != nil:
		sol.BestBound = incumbent
	case haveOpen:
		sol.BestBound = openBound
	default:
		// Proven infeasible: the optimum over an empty feasible set is the
		// worst objective value.
		sol.BestBound = worstObj
	}
	return sol
}

// Clone returns an independent copy of the MILP sharing no mutable state
// with the original, so concurrent Solve calls can proceed in parallel on
// their own clones.
func (p *Problem) Clone() *Problem {
	c := &Problem{
		LP:       p.LP.Clone(),
		intVars:  append([]lp.VarID(nil), p.intVars...),
		sense:    p.sense,
		haveObj:  p.haveObj,
		objExpr:  p.objExpr,
		intIndex: make(map[lp.VarID]bool, len(p.intIndex)),
	}
	for k, v := range p.intIndex {
		c.intIndex[k] = v
	}
	return c
}

func cloneBounds(b map[lp.VarID][2]float64) map[lp.VarID][2]float64 {
	c := make(map[lp.VarID][2]float64, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}
