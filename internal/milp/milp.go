// Package milp implements mixed-integer linear programming by
// branch-and-bound over the lp simplex. It is the engine behind the
// MetaOpt-style white-box baseline (internal/whitebox): white-box analyzers
// encode the entire learning-enabled pipeline — DNN included — as one joint
// optimization, which is exactly the approach whose scalability §3.1 shows
// breaking down. It also backs the alloc case study's packing oracle, which
// put it on the analyzer's hot path and motivated the warm-started engine
// in bb.go.
package milp

import (
	"context"
	"math"
	"time"

	"repro/internal/lp"
	"repro/internal/obs"
)

// Status describes a MILP solve outcome.
type Status int

const (
	// Optimal means the tree was exhausted and the incumbent is optimal.
	Optimal Status = iota
	// Feasible means an incumbent exists but the budget ran out before
	// optimality was proven.
	Feasible
	// NoIncumbent means the budget ran out with no integer-feasible point
	// found — the white-box failure mode of Tables 1 and 2.
	NoIncumbent
	// Infeasible means the problem has no feasible point at all.
	Infeasible
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case NoIncumbent:
		return "no-incumbent"
	case Infeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// StopReason spellings for Solution.StopReason, matching the core search
// layer's conventions ("deadline"/"cancelled") plus the MILP-specific node
// budget. Empty means the tree was exhausted.
const (
	StopNodeBudget = "node-budget"
	StopDeadline   = "deadline"
	StopCancelled  = "cancelled"
)

// Problem is a MILP: an LP plus integrality requirements.
type Problem struct {
	LP       *lp.Problem
	intVars  []lp.VarID
	sense    lp.Sense
	haveObj  bool
	objExpr  *lp.Expr
	intIndex map[lp.VarID]bool
}

// NewProblem returns an empty MILP.
func NewProblem() *Problem {
	return &Problem{LP: lp.NewProblem(), intIndex: make(map[lp.VarID]bool)}
}

// AddVariable adds a continuous variable.
func (p *Problem) AddVariable(name string, lo, hi float64) lp.VarID {
	return p.LP.AddVariable(name, lo, hi)
}

// AddInteger adds an integer variable with the given bounds.
func (p *Problem) AddInteger(name string, lo, hi float64) lp.VarID {
	v := p.LP.AddVariable(name, lo, hi)
	p.intVars = append(p.intVars, v)
	p.intIndex[v] = true
	return v
}

// AddBinary adds a 0/1 variable.
func (p *Problem) AddBinary(name string) lp.VarID {
	return p.AddInteger(name, 0, 1)
}

// AddConstraint forwards to the underlying LP.
func (p *Problem) AddConstraint(name string, expr *lp.Expr, rel lp.Rel, rhs float64) {
	p.LP.AddConstraint(name, expr, rel, rhs)
}

// SetObjective sets the optimization goal.
func (p *Problem) SetObjective(sense lp.Sense, expr *lp.Expr) {
	p.sense = sense
	p.objExpr = expr
	p.haveObj = true
	p.LP.SetObjective(sense, expr)
}

// Executor runs independent tasks, possibly concurrently. It is
// structurally identical to core.Executor, so a serve.Pool (or any other
// core executor) plugs in directly without milp importing the search layer.
// Submitted tasks never block on one another.
type Executor interface {
	Run(task func())
}

// Options bound the branch-and-bound effort and select the engine.
type Options struct {
	// MaxNodes caps the number of explored nodes (0 = 100000).
	MaxNodes int
	// MaxTime caps wall-clock time (0 = unlimited).
	MaxTime time.Duration
	// IntTol is the integrality tolerance (0 = 1e-6).
	IntTol float64

	// Workers is the number of LP relaxations solved concurrently within a
	// wave (≤1 = sequential). The result is bitwise independent of Workers
	// and of how the Executor schedules tasks: every node's relaxation is a
	// pure function of (node bounds, parent basis snapshot), and incumbent
	// and pseudo-cost folding happens in deterministic heap-pop order.
	Workers int
	// WaveWidth is the number of best-bound nodes popped per synchronized
	// wave (0 = 8). Unlike Workers it IS part of the search definition —
	// changing it changes which nodes get solved before the next incumbent
	// lands — so it is an Options field, not a runtime autotuning knob.
	WaveWidth int
	// Executor, when non-nil and Workers > 1, runs the per-wave LP solves
	// (e.g. a shared serve.Pool). Nil falls back to ad-hoc goroutines.
	Executor Executor
	// Obs, when non-nil, receives solver telemetry: counters "milp.nodes",
	// "milp.warm_hits", "milp.dual_pivots", "milp.cold_fallbacks".
	Obs *obs.Registry

	// ColdClone selects the legacy engine that clones the full LP and
	// cold-solves it at every node. It is kept as the equivalence oracle
	// for the warm engine (and for A/B benchmarks), not for production use.
	ColdClone bool
}

// Solution is a MILP solve result.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Nodes is the number of branch-and-bound nodes explored; Elapsed the
	// wall time spent.
	Nodes   int
	Elapsed time.Duration
	// BestBound is the proven bound on the optimum at termination: the best
	// objective any unexplored subtree could still attain, folded with the
	// incumbent. When Status == Optimal it equals Objective exactly; when the
	// budget ran out it brackets the optimum from the other side (an upper
	// bound for maximization, lower for minimization), so callers can report
	// an optimality gap. A solve that proved infeasibility reports the worst
	// objective value (-Inf for maximization, +Inf for minimization).
	BestBound float64
	// IterLimited counts nodes whose LP relaxation hit the simplex iteration
	// cap or deadline and had to be pruned unresolved. Any nonzero count
	// means an unconverged relaxation may be hiding the true optimum, so the
	// solver never claims Optimal or Infeasible alongside it.
	IterLimited int

	// NodeResolves counts node relaxations completed warm from a retained
	// parent basis (lp BoundHits); DualPivots the dual-simplex pivots those
	// re-solves spent; ColdFallbacks the relaxations that went through a
	// full cold solve (the root, plus any warm-path bailouts). All zero
	// under the ColdClone engine.
	NodeResolves  int
	DualPivots    int
	ColdFallbacks int

	// StopReason is empty when the tree was exhausted, else one of
	// StopNodeBudget, StopDeadline, StopCancelled — why the search stopped
	// with the frontier still open.
	StopReason string
}

// Gap returns the relative optimality gap |BestBound − Objective| scaled by
// max(1, |Objective|). Zero when the solve proved optimality; NaN/Inf when
// no finite bound was established (e.g. the root was never resolved).
func (s *Solution) Gap() float64 {
	scale := math.Abs(s.Objective)
	if scale < 1 {
		scale = 1
	}
	return math.Abs(s.BestBound-s.Objective) / scale
}

// Solve runs branch and bound without external cancellation.
func (p *Problem) Solve(opts Options) *Solution {
	return p.SolveCtx(context.Background(), opts)
}

// SolveCtx runs branch and bound honoring ctx: on cancellation or deadline
// the best-so-far Solution is returned with StopReason set, mirroring the
// core search layer's stop semantics. The warm engine (bb.go) is the
// default; Options.ColdClone selects the legacy per-node-clone engine.
func (p *Problem) SolveCtx(ctx context.Context, opts Options) *Solution {
	start := time.Now()
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 100000
	}
	if opts.IntTol == 0 {
		opts.IntTol = 1e-6
	}
	if opts.WaveWidth == 0 {
		opts.WaveWidth = DefaultWaveWidth
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	var sol *Solution
	if opts.ColdClone {
		sol = p.solveColdClone(ctx, start, opts)
	} else {
		sol = p.solveWarm(ctx, start, opts)
	}
	if opts.Obs != nil {
		opts.Obs.Counter("milp.nodes").Add(int64(sol.Nodes))
		opts.Obs.Counter("milp.warm_hits").Add(int64(sol.NodeResolves))
		opts.Obs.Counter("milp.dual_pivots").Add(int64(sol.DualPivots))
		opts.Obs.Counter("milp.cold_fallbacks").Add(int64(sol.ColdFallbacks))
	}
	return sol
}

// better reports whether objective a improves on b under the problem sense.
func (p *Problem) better(a, b float64) bool {
	if p.sense == lp.Maximize {
		return a > b
	}
	return a < b
}

// worstObjective is the identity element of better: -Inf for maximization,
// +Inf for minimization.
func (p *Problem) worstObjective() float64 {
	if p.sense == lp.Minimize {
		return math.Inf(1)
	}
	return math.Inf(-1)
}

// ctxStop maps a context error to the StopReason spelling.
func ctxStop(err error) string {
	if err == context.DeadlineExceeded {
		return StopDeadline
	}
	return StopCancelled
}

// Clone returns an independent copy of the MILP sharing no mutable state
// with the original, so concurrent Solve calls can proceed in parallel on
// their own clones.
func (p *Problem) Clone() *Problem {
	c := &Problem{
		LP:       p.LP.Clone(),
		intVars:  append([]lp.VarID(nil), p.intVars...),
		sense:    p.sense,
		haveObj:  p.haveObj,
		objExpr:  p.objExpr,
		intIndex: make(map[lp.VarID]bool, len(p.intIndex)),
	}
	for k, v := range p.intIndex {
		c.intIndex[k] = v
	}
	return c
}
