// Package milp implements mixed-integer linear programming by
// branch-and-bound over the lp simplex. It is the engine behind the
// MetaOpt-style white-box baseline (internal/whitebox): white-box analyzers
// encode the entire learning-enabled pipeline — DNN included — as one joint
// optimization, which is exactly the approach whose scalability §3.1 shows
// breaking down.
package milp

import (
	"math"
	"time"

	"repro/internal/lp"
)

// Status describes a MILP solve outcome.
type Status int

const (
	// Optimal means the tree was exhausted and the incumbent is optimal.
	Optimal Status = iota
	// Feasible means an incumbent exists but the budget ran out before
	// optimality was proven.
	Feasible
	// NoIncumbent means the budget ran out with no integer-feasible point
	// found — the white-box failure mode of Tables 1 and 2.
	NoIncumbent
	// Infeasible means the problem has no feasible point at all.
	Infeasible
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case NoIncumbent:
		return "no-incumbent"
	case Infeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// Problem is a MILP: an LP plus integrality requirements.
type Problem struct {
	LP       *lp.Problem
	intVars  []lp.VarID
	sense    lp.Sense
	haveObj  bool
	objExpr  *lp.Expr
	intIndex map[lp.VarID]bool
}

// NewProblem returns an empty MILP.
func NewProblem() *Problem {
	return &Problem{LP: lp.NewProblem(), intIndex: make(map[lp.VarID]bool)}
}

// AddVariable adds a continuous variable.
func (p *Problem) AddVariable(name string, lo, hi float64) lp.VarID {
	return p.LP.AddVariable(name, lo, hi)
}

// AddInteger adds an integer variable with the given bounds.
func (p *Problem) AddInteger(name string, lo, hi float64) lp.VarID {
	v := p.LP.AddVariable(name, lo, hi)
	p.intVars = append(p.intVars, v)
	p.intIndex[v] = true
	return v
}

// AddBinary adds a 0/1 variable.
func (p *Problem) AddBinary(name string) lp.VarID {
	return p.AddInteger(name, 0, 1)
}

// AddConstraint forwards to the underlying LP.
func (p *Problem) AddConstraint(name string, expr *lp.Expr, rel lp.Rel, rhs float64) {
	p.LP.AddConstraint(name, expr, rel, rhs)
}

// SetObjective sets the optimization goal.
func (p *Problem) SetObjective(sense lp.Sense, expr *lp.Expr) {
	p.sense = sense
	p.objExpr = expr
	p.haveObj = true
	p.LP.SetObjective(sense, expr)
}

// Options bound the branch-and-bound effort.
type Options struct {
	// MaxNodes caps the number of explored nodes (0 = 100000).
	MaxNodes int
	// MaxTime caps wall-clock time (0 = unlimited).
	MaxTime time.Duration
	// IntTol is the integrality tolerance (0 = 1e-6).
	IntTol float64
}

// Solution is a MILP solve result.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Nodes is the number of branch-and-bound nodes explored; Elapsed the
	// wall time spent.
	Nodes   int
	Elapsed time.Duration
	// BestBound is the proven bound on the optimum at termination.
	BestBound float64
}

type bbNode struct {
	// bound overrides: variable -> (lo, hi)
	bounds map[lp.VarID][2]float64
	// parent relaxation objective, used for best-first ordering
	relaxObj float64
}

// Solve runs branch and bound.
func (p *Problem) Solve(opts Options) *Solution {
	start := time.Now()
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 100000
	}
	if opts.IntTol == 0 {
		opts.IntTol = 1e-6
	}
	better := func(a, b float64) bool {
		if p.sense == lp.Maximize {
			return a > b
		}
		return a < b
	}
	worstObj := math.Inf(-1)
	if p.sense == lp.Minimize {
		worstObj = math.Inf(1)
	}

	sol := &Solution{Status: NoIncumbent, Objective: worstObj, BestBound: -worstObj}
	// Stack-based DFS with best-relaxation-first tie ordering via simple
	// append/pop (children pushed so the better bound pops first).
	stack := []bbNode{{bounds: map[lp.VarID][2]float64{}, relaxObj: -worstObj}}
	incumbent := worstObj
	var incumbentX []float64
	sawFeasibleRelax := false

	for len(stack) > 0 {
		if sol.Nodes >= opts.MaxNodes {
			break
		}
		if opts.MaxTime > 0 && time.Since(start) >= opts.MaxTime {
			break
		}
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sol.Nodes++

		// Prune by bound before solving if the parent relaxation is already
		// no better than the incumbent.
		if incumbentX != nil && !better(node.relaxObj, incumbent) {
			continue
		}
		relax := p.LP.Clone()
		if opts.MaxTime > 0 {
			relax.Deadline = start.Add(opts.MaxTime)
		}
		for v, b := range node.bounds {
			relax.SetVarBounds(v, b[0], b[1])
		}
		s := relax.Solve()
		switch s.Status {
		case lp.StatusInfeasible:
			continue
		case lp.StatusUnbounded:
			// An unbounded relaxation cannot prove anything; treat the node
			// as unexplorable.
			continue
		case lp.StatusIterLimit:
			continue
		}
		sawFeasibleRelax = true
		if incumbentX != nil && !better(s.Objective, incumbent) {
			continue // bound prune
		}
		// Find the most fractional integer variable.
		branchVar := lp.VarID(-1)
		worstFrac := opts.IntTol
		for _, v := range p.intVars {
			val := s.Value(v)
			frac := math.Abs(val - math.Round(val))
			if frac > worstFrac {
				worstFrac = frac
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integer feasible: new incumbent.
			if incumbentX == nil || better(s.Objective, incumbent) {
				incumbent = s.Objective
				incumbentX = append([]float64{}, s.X...)
			}
			continue
		}
		val := s.Value(branchVar)
		lo, hi := p.LP.VarBounds(branchVar)
		if b, ok := node.bounds[branchVar]; ok {
			lo, hi = b[0], b[1]
		}
		down := cloneBounds(node.bounds)
		down[branchVar] = [2]float64{lo, math.Floor(val)}
		up := cloneBounds(node.bounds)
		up[branchVar] = [2]float64{math.Ceil(val), hi}
		// Push both children; explore the "down" branch first by pushing it
		// last (LIFO).
		stack = append(stack, bbNode{bounds: up, relaxObj: s.Objective})
		stack = append(stack, bbNode{bounds: down, relaxObj: s.Objective})
	}

	sol.Elapsed = time.Since(start)
	exhausted := len(stack) == 0 && sol.Nodes < opts.MaxNodes
	switch {
	case incumbentX != nil && exhausted:
		sol.Status = Optimal
	case incumbentX != nil:
		sol.Status = Feasible
	case exhausted && !sawFeasibleRelax:
		sol.Status = Infeasible
	case exhausted:
		// Tree exhausted, relaxations feasible, but no integral point.
		sol.Status = Infeasible
	default:
		sol.Status = NoIncumbent
	}
	if incumbentX != nil {
		sol.Objective = incumbent
		sol.X = incumbentX
	}
	return sol
}

func cloneBounds(b map[lp.VarID][2]float64) map[lp.VarID][2]float64 {
	c := make(map[lp.VarID][2]float64, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}
