package milp

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/rng"
)

// fractionalKnapsack builds a deterministic binary knapsack whose root
// relaxation is fractional, so branch and bound needs several nodes.
func fractionalKnapsack(n int, seed uint64) *Problem {
	p := NewProblem()
	r := rng.New(seed)
	obj := lp.NewExpr()
	con := lp.NewExpr()
	for i := 0; i < n; i++ {
		v := p.AddBinary("")
		obj.Add(3+r.Float64(), v)
		con.Add(2+r.Float64(), v)
	}
	p.AddConstraint("", con, lp.LE, float64(n)+1.5)
	p.SetObjective(lp.Maximize, obj)
	return p
}

// TestBestBoundOptimal pins the BestBound contract at optimality: a tree
// exhausted with every relaxation conclusive must report BestBound equal to
// the incumbent objective (gap exactly zero).
func TestBestBoundOptimal(t *testing.T) {
	p := NewProblem()
	a := p.AddBinary("a")
	b := p.AddBinary("b")
	c := p.AddBinary("c")
	p.AddConstraint("w", lp.NewExpr().Add(3, a).Add(4, b).Add(2, c), lp.LE, 6)
	p.SetObjective(lp.Maximize, lp.NewExpr().Add(10, a).Add(13, b).Add(7, c))
	s := p.Solve(Options{})
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if s.BestBound != s.Objective {
		t.Fatalf("BestBound = %v, want exactly Objective %v at optimality", s.BestBound, s.Objective)
	}
	if s.Gap() != 0 {
		t.Fatalf("Gap() = %v, want 0 at optimality", s.Gap())
	}
	// Minimization side of the same contract.
	q := NewProblem()
	x := q.AddInteger("x", 0, 3)
	y := q.AddInteger("y", 0, 3)
	q.AddConstraint("", lp.NewExpr().Add(1, x).Add(1, y), lp.GE, 2.5)
	q.SetObjective(lp.Minimize, lp.NewExpr().Add(3, x).Add(2, y))
	sq := q.Solve(Options{})
	if sq.Status != Optimal || sq.BestBound != sq.Objective {
		t.Fatalf("min: status %v BestBound %v Objective %v", sq.Status, sq.BestBound, sq.Objective)
	}
}

// TestBestBoundUnderBudget checks that a budget-limited solve reports a
// finite BestBound bracketing the optimum from above (maximization): the
// incumbent is a lower bound, the open frontier's relaxations the upper.
func TestBestBoundUnderBudget(t *testing.T) {
	p := fractionalKnapsack(12, 7)
	full := p.Solve(Options{})
	if full.Status != Optimal {
		t.Fatalf("full solve: %v", full.Status)
	}
	for nodes := 2; nodes < full.Nodes; nodes += 3 {
		s := p.Solve(Options{MaxNodes: nodes})
		if math.IsInf(s.BestBound, 0) || math.IsNaN(s.BestBound) {
			t.Fatalf("MaxNodes=%d: BestBound = %v, want finite", nodes, s.BestBound)
		}
		if s.BestBound < full.Objective-1e-9 {
			t.Fatalf("MaxNodes=%d: BestBound %v below true optimum %v", nodes, s.BestBound, full.Objective)
		}
		if s.Status == Feasible && s.Objective > s.BestBound+1e-9 {
			t.Fatalf("MaxNodes=%d: incumbent %v exceeds its own bound %v", nodes, s.Objective, s.BestBound)
		}
	}
}

// TestIterLimitedNeverOptimal forces unconverged LP relaxations via the
// underlying problem's simplex iteration cap and asserts the solver never
// claims Optimal (or Infeasible) after pruning one — satellite bug 2: an
// unconverged relaxation can hide the true optimum.
func TestIterLimitedNeverOptimal(t *testing.T) {
	sawIterLimited := false
	for maxIter := 1; maxIter <= 40; maxIter++ {
		p := fractionalKnapsack(8, 1)
		p.LP.MaxIter = maxIter
		s := p.Solve(Options{})
		if s.IterLimited > 0 {
			sawIterLimited = true
			if s.Status == Optimal {
				t.Fatalf("MaxIter=%d: claimed Optimal with %d iter-limited prunes", maxIter, s.IterLimited)
			}
			if s.Status == Infeasible {
				t.Fatalf("MaxIter=%d: claimed Infeasible with %d iter-limited prunes", maxIter, s.IterLimited)
			}
		}
	}
	if !sawIterLimited {
		t.Fatal("no MaxIter in [1,40] produced an iter-limited node; test needs a harder relaxation")
	}
	// The tightest cap must iter-limit the root itself: no incumbent, no
	// optimality claim, and status NoIncumbent (not Infeasible).
	p := fractionalKnapsack(8, 1)
	p.LP.MaxIter = 1
	s := p.Solve(Options{})
	if s.IterLimited == 0 {
		t.Fatal("MaxIter=1 did not iter-limit any node")
	}
	if s.Status != NoIncumbent {
		t.Fatalf("MaxIter=1: status %v, want no-incumbent", s.Status)
	}
}

// TestExactMaxNodesBoundary pins satellite bug 3: a tree that empties on
// exactly the MaxNodes-th node is exhausted and must be classified
// Optimal/Infeasible, not Feasible/NoIncumbent.
func TestExactMaxNodesBoundary(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		x := p.AddInteger("x", 0, 100)
		p.AddConstraint("", lp.NewExpr().Add(2, x), lp.LE, 7)
		p.SetObjective(lp.Maximize, lp.NewExpr().Add(1, x))
		return p
	}
	full := build().Solve(Options{})
	if full.Status != Optimal {
		t.Fatalf("unbounded-budget solve: %v", full.Status)
	}
	if full.Nodes < 2 {
		t.Fatalf("test needs a multi-node tree, got %d nodes", full.Nodes)
	}
	// Budget of exactly the node count: same tree, same exhaustion.
	exact := build().Solve(Options{MaxNodes: full.Nodes})
	if exact.Nodes != full.Nodes {
		t.Fatalf("exact-budget solve explored %d nodes, want %d", exact.Nodes, full.Nodes)
	}
	if exact.Status != Optimal {
		t.Fatalf("exhaustion on exactly the MaxNodes-th node classified %v, want optimal", exact.Status)
	}
	if exact.BestBound != exact.Objective {
		t.Fatalf("exact-budget BestBound %v != Objective %v", exact.BestBound, exact.Objective)
	}
	// One node fewer: genuinely budget-limited, must NOT claim optimality.
	under := build().Solve(Options{MaxNodes: full.Nodes - 1})
	if under.Status == Optimal {
		t.Fatalf("budget-limited solve (MaxNodes=%d) claimed optimal", full.Nodes-1)
	}
	// The infeasible side of the same boundary: integral window is empty.
	buildInf := func() *Problem {
		p := NewProblem()
		x := p.AddInteger("x", 0, 1)
		p.AddConstraint("", lp.NewExpr().Add(1, x), lp.GE, 0.4)
		p.AddConstraint("", lp.NewExpr().Add(1, x), lp.LE, 0.7)
		p.SetObjective(lp.Maximize, lp.NewExpr().Add(1, x))
		return p
	}
	fullInf := buildInf().Solve(Options{})
	if fullInf.Status != Infeasible {
		t.Fatalf("infeasible solve: %v", fullInf.Status)
	}
	exactInf := buildInf().Solve(Options{MaxNodes: fullInf.Nodes})
	if exactInf.Status != Infeasible {
		t.Fatalf("exact-budget infeasible tree classified %v, want infeasible", exactInf.Status)
	}
}

// TestStatusMatrix is the table-driven status matrix: every terminal Status
// crossed with the budget path that produces it (node budget, time budget,
// integrality tolerance). Each case also states the BestBound invariant it
// expects.
func TestStatusMatrix(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name  string
		build func() *Problem
		opts  Options
		want  Status
		// check runs extra per-case invariants.
		check func(t *testing.T, s *Solution)
	}{
		{
			name:  "optimal/unbounded-budget",
			build: func() *Problem { return fractionalKnapsack(8, 1) },
			opts:  Options{},
			want:  Optimal,
			check: func(t *testing.T, s *Solution) {
				if s.BestBound != s.Objective {
					t.Errorf("BestBound %v != Objective %v", s.BestBound, s.Objective)
				}
				if s.IterLimited != 0 {
					t.Errorf("IterLimited = %d, want 0", s.IterLimited)
				}
			},
		},
		{
			name: "optimal/inttol-accepts-near-integer",
			build: func() *Problem {
				p := NewProblem()
				x := p.AddInteger("x", 0, 10)
				p.AddConstraint("", lp.NewExpr().Add(1, x), lp.LE, 2.6)
				p.SetObjective(lp.Maximize, lp.NewExpr().Add(1, x))
				return p
			},
			opts: Options{IntTol: 0.5},
			want: Optimal,
			check: func(t *testing.T, s *Solution) {
				// With a 0.5 tolerance the fractional root (2.6) already
				// counts as integral: no branching at all.
				if s.Nodes != 1 || math.Abs(s.Objective-2.6) > 1e-9 {
					t.Errorf("nodes %d obj %v, want 1 node obj 2.6", s.Nodes, s.Objective)
				}
			},
		},
		{
			// MaxNodes sits between the warm engine's first incumbent (node
			// 39 on this instance — best-bound waves spread before they
			// dive) and tree exhaustion, so the budget breaks with an
			// incumbent in hand.
			name:  "feasible/node-budget",
			build: func() *Problem { return fractionalKnapsack(12, 7) },
			opts:  Options{MaxNodes: 40},
			want:  Feasible,
			check: func(t *testing.T, s *Solution) {
				if math.IsInf(s.BestBound, 0) {
					t.Errorf("BestBound = %v, want finite under node budget", s.BestBound)
				}
				if s.BestBound < s.Objective-1e-9 {
					t.Errorf("BestBound %v below incumbent %v (maximization)", s.BestBound, s.Objective)
				}
			},
		},
		{
			name:  "no-incumbent/node-budget",
			build: func() *Problem { return fractionalKnapsack(8, 1) },
			opts:  Options{MaxNodes: 1},
			want:  NoIncumbent,
			check: func(t *testing.T, s *Solution) {
				if s.Nodes != 1 {
					t.Errorf("nodes = %d, want 1", s.Nodes)
				}
				// The root was solved, so its children bound the tree.
				if math.IsInf(s.BestBound, 0) {
					t.Errorf("BestBound = %v, want the root relaxation bound", s.BestBound)
				}
			},
		},
		{
			name:  "no-incumbent/time-budget",
			build: func() *Problem { return fractionalKnapsack(12, 7) },
			opts:  Options{MaxTime: time.Nanosecond},
			want:  NoIncumbent,
			check: func(t *testing.T, s *Solution) {
				if s.Nodes != 0 {
					t.Errorf("nodes = %d, want 0 under an already-expired budget", s.Nodes)
				}
			},
		},
		{
			name: "infeasible/constraint",
			build: func() *Problem {
				p := NewProblem()
				x := p.AddBinary("x")
				p.AddConstraint("", lp.NewExpr().Add(1, x), lp.GE, 2)
				p.SetObjective(lp.Maximize, lp.NewExpr().Add(1, x))
				return p
			},
			opts: Options{},
			want: Infeasible,
			check: func(t *testing.T, s *Solution) {
				if s.BestBound != math.Inf(-1) {
					t.Errorf("BestBound = %v, want -Inf for a proven-infeasible maximization", s.BestBound)
				}
			},
		},
		{
			name: "infeasible/min-sense-bound",
			build: func() *Problem {
				p := NewProblem()
				x := p.AddInteger("x", 0, 1)
				p.AddConstraint("", lp.NewExpr().Add(1, x), lp.GE, 0.4)
				p.AddConstraint("", lp.NewExpr().Add(1, x), lp.LE, 0.7)
				p.SetObjective(lp.Minimize, lp.NewExpr().Add(1, x))
				return p
			},
			opts: Options{},
			want: Infeasible,
			check: func(t *testing.T, s *Solution) {
				if s.BestBound != inf {
					t.Errorf("BestBound = %v, want +Inf for a proven-infeasible minimization", s.BestBound)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.build().Solve(tc.opts)
			if s.Status != tc.want {
				t.Fatalf("status = %v, want %v", s.Status, tc.want)
			}
			if tc.check != nil {
				tc.check(t, s)
			}
		})
	}
}

// TestConcurrentSolveClones runs Solve in parallel on independent clones of
// one MILP and checks every worker agrees with the sequential solve — the
// -race leg for the packing baseline, which the alloc case study solves from
// concurrent restart workers.
func TestConcurrentSolveClones(t *testing.T) {
	base := fractionalKnapsack(10, 5)
	ref := base.Clone().Solve(Options{})
	if ref.Status != Optimal {
		t.Fatalf("reference solve: %v", ref.Status)
	}
	const workers = 8
	var wg sync.WaitGroup
	sols := make([]*Solution, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sols[w] = base.Clone().Solve(Options{})
		}(w)
	}
	wg.Wait()
	for w, s := range sols {
		if s.Status != Optimal || s.Objective != ref.Objective || s.BestBound != ref.BestBound {
			t.Fatalf("worker %d: status %v obj %v bound %v, want %v/%v/%v",
				w, s.Status, s.Objective, s.BestBound, ref.Status, ref.Objective, ref.BestBound)
		}
	}
}
