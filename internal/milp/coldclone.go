package milp

import (
	"context"
	"math"
	"time"

	"repro/internal/lp"
)

// This file preserves the original branch-and-bound engine verbatim in its
// search semantics: depth-first with most-fractional branching, a full
// p.LP.Clone() and cold LP solve per node, and map-backed bound overrides
// per child. It is deliberately NOT deleted: it is the equivalence oracle
// the warm engine (bb.go) is pinned against in tests, and the baseline the
// node-throughput benchmarks measure the warm engine's speedup over.

type coldNode struct {
	// bound overrides: variable -> (lo, hi)
	bounds map[lp.VarID][2]float64
	// parent relaxation objective, used for best-relaxation-first ordering
	relaxObj float64
}

func (p *Problem) solveColdClone(ctx context.Context, start time.Time, opts Options) *Solution {
	better := p.better
	worstObj := p.worstObjective()

	sol := &Solution{Status: NoIncumbent, Objective: worstObj, BestBound: -worstObj}
	// Stack-based DFS with best-relaxation-first tie ordering via simple
	// append/pop (children pushed so the better bound pops first).
	stack := []coldNode{{bounds: map[lp.VarID][2]float64{}, relaxObj: -worstObj}}
	incumbent := worstObj
	var incumbentX []float64
	// budgetBreak records that the loop exited on a node or time budget
	// rather than by draining the stack — the two must not be conflated: a
	// tree that empties on exactly the MaxNodes-th node IS exhausted.
	budgetBreak := false
	// openBound accumulates the best (in the objective direction)
	// parent-relaxation bound over every subtree the search left unresolved:
	// nodes pruned with unconverged or unbounded relaxations, and nodes still
	// on the stack at a budget break. Any optimum hiding in those subtrees is
	// no better than openBound.
	openBound := worstObj
	haveOpen := false
	trackOpen := func(b float64) {
		if !haveOpen || better(b, openBound) {
			openBound, haveOpen = b, true
		}
	}
	// unresolved counts subtrees pruned without a conclusive relaxation
	// (iteration/deadline-limited or unbounded): while nonzero, a drained
	// stack proves neither optimality nor infeasibility.
	unresolved := 0

	deadline := ctxDeadline(ctx, start, opts)

	for len(stack) > 0 {
		if err := ctx.Err(); err != nil {
			budgetBreak = true
			sol.StopReason = ctxStop(err)
			break
		}
		if sol.Nodes >= opts.MaxNodes {
			budgetBreak = true
			sol.StopReason = StopNodeBudget
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			budgetBreak = true
			sol.StopReason = StopDeadline
			break
		}
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sol.Nodes++

		// Prune by bound before solving if the parent relaxation is already
		// no better than the incumbent.
		if incumbentX != nil && !better(node.relaxObj, incumbent) {
			continue
		}
		relax := p.LP.Clone()
		relax.Deadline = deadline
		for v, b := range node.bounds {
			relax.SetVarBounds(v, b[0], b[1])
		}
		s := relax.Solve()
		switch s.Status {
		case lp.StatusInfeasible:
			continue
		case lp.StatusUnbounded:
			// An unbounded relaxation cannot prove anything about its
			// subtree; prune it but remember that the tree was not fully
			// resolved, bounded only by the parent relaxation.
			unresolved++
			trackOpen(node.relaxObj)
			continue
		case lp.StatusIterLimit:
			// The relaxation did not converge: its subtree may hide the true
			// optimum, so the terminal status must not claim Optimal (or
			// Infeasible) once the stack drains. The parent relaxation still
			// bounds whatever the subtree holds.
			sol.IterLimited++
			unresolved++
			trackOpen(node.relaxObj)
			continue
		}
		if incumbentX != nil && !better(s.Objective, incumbent) {
			continue // bound prune
		}
		// Find the most fractional integer variable.
		branchVar := lp.VarID(-1)
		worstFrac := opts.IntTol
		for _, v := range p.intVars {
			val := s.Value(v)
			frac := math.Abs(val - math.Round(val))
			if frac > worstFrac {
				worstFrac = frac
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integer feasible: new incumbent.
			if incumbentX == nil || better(s.Objective, incumbent) {
				incumbent = s.Objective
				incumbentX = append([]float64{}, s.X...)
			}
			continue
		}
		val := s.Value(branchVar)
		lo, hi := p.LP.VarBounds(branchVar)
		if b, ok := node.bounds[branchVar]; ok {
			lo, hi = b[0], b[1]
		}
		down := cloneBounds(node.bounds)
		down[branchVar] = [2]float64{lo, math.Floor(val)}
		up := cloneBounds(node.bounds)
		up[branchVar] = [2]float64{math.Ceil(val), hi}
		// Push both children; explore the "down" branch first by pushing it
		// last (LIFO).
		stack = append(stack, coldNode{bounds: up, relaxObj: s.Objective})
		stack = append(stack, coldNode{bounds: down, relaxObj: s.Objective})
	}

	sol.Elapsed = time.Since(start)
	// Exhaustion is "the stack drained without a budget break" — checking
	// Nodes < MaxNodes instead would misclassify a tree that empties on
	// exactly the MaxNodes-th node. A break always precedes the pop, so the
	// unexplored frontier is exactly what remains on the stack.
	exhausted := len(stack) == 0 && !budgetBreak
	proven := exhausted && unresolved == 0
	switch {
	case incumbentX != nil && proven:
		sol.Status = Optimal
	case incumbentX != nil:
		sol.Status = Feasible
	case proven:
		// Tree exhausted with every relaxation conclusive and no integral
		// point: the MILP is infeasible.
		sol.Status = Infeasible
	default:
		sol.Status = NoIncumbent
	}
	if !budgetBreak {
		sol.StopReason = ""
	}
	if incumbentX != nil {
		sol.Objective = incumbent
		sol.X = incumbentX
	}
	// BestBound: fold the open frontier into the incumbent. Subtrees pruned
	// by bound are dominated by the incumbent and need no tracking.
	for _, nd := range stack {
		trackOpen(nd.relaxObj)
	}
	switch {
	case incumbentX != nil && haveOpen && better(openBound, incumbent):
		sol.BestBound = openBound
	case incumbentX != nil:
		sol.BestBound = incumbent
	case haveOpen:
		sol.BestBound = openBound
	default:
		// Proven infeasible: the optimum over an empty feasible set is the
		// worst objective value.
		sol.BestBound = worstObj
	}
	return sol
}

// ctxDeadline folds Options.MaxTime and the context deadline into one
// effective wall-clock deadline (zero when neither applies).
func ctxDeadline(ctx context.Context, start time.Time, opts Options) time.Time {
	var d time.Time
	if opts.MaxTime > 0 {
		d = start.Add(opts.MaxTime)
	}
	if cd, ok := ctx.Deadline(); ok && (d.IsZero() || cd.Before(d)) {
		d = cd
	}
	return d
}

func cloneBounds(b map[lp.VarID][2]float64) map[lp.VarID][2]float64 {
	c := make(map[lp.VarID][2]float64, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}
