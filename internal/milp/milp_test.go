package milp

import (
	"math"
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/rng"
)

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary -> a=1,c=1 (17)
	// vs b=1,c=1 (20, weight 6) -> optimal 20.
	p := NewProblem()
	a := p.AddBinary("a")
	b := p.AddBinary("b")
	c := p.AddBinary("c")
	p.AddConstraint("w", lp.NewExpr().Add(3, a).Add(4, b).Add(2, c), lp.LE, 6)
	p.SetObjective(lp.Maximize, lp.NewExpr().Add(10, a).Add(13, b).Add(7, c))
	s := p.Solve(Options{})
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-20) > 1e-6 {
		t.Fatalf("objective = %v, want 20", s.Objective)
	}
	if math.Abs(s.X[b]-1) > 1e-6 || math.Abs(s.X[c]-1) > 1e-6 || math.Abs(s.X[a]) > 1e-6 {
		t.Fatalf("solution = %v", s.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x st 2x <= 7, x integer -> x = 3 (LP relax = 3.5).
	p := NewProblem()
	x := p.AddInteger("x", 0, 100)
	p.AddConstraint("", lp.NewExpr().Add(2, x), lp.LE, 7)
	p.SetObjective(lp.Maximize, lp.NewExpr().Add(1, x))
	s := p.Solve(Options{})
	if s.Status != Optimal || math.Abs(s.Objective-3) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 3", s.Status, s.Objective)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y st x + y <= 3.5, x integer, y continuous in [0, 2].
	// x=3, y=0.5 -> 6.5? x+y<=3.5: x=3,y=0.5 obj 6.5. x=2,y=1.5 -> 5.5.
	p := NewProblem()
	x := p.AddInteger("x", 0, 10)
	y := p.AddVariable("y", 0, 2)
	p.AddConstraint("", lp.NewExpr().Add(1, x).Add(1, y), lp.LE, 3.5)
	p.SetObjective(lp.Maximize, lp.NewExpr().Add(2, x).Add(1, y))
	s := p.Solve(Options{})
	if s.Status != Optimal || math.Abs(s.Objective-6.5) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 6.5", s.Status, s.Objective)
	}
}

func TestMinimization(t *testing.T) {
	// min 3x + 2y st x + y >= 2.5, binaries... infeasible with binaries
	// (max sum 2) -> use integers up to 3: x=0,y=3 obj 6? y<=3: 2*3=6;
	// x=1,y=2 -> 7; x=2,y=1 -> 8; x=3,y=0 -> 9. And y=3,x=0 works (3>=2.5).
	p := NewProblem()
	x := p.AddInteger("x", 0, 3)
	y := p.AddInteger("y", 0, 3)
	p.AddConstraint("", lp.NewExpr().Add(1, x).Add(1, y), lp.GE, 2.5)
	p.SetObjective(lp.Minimize, lp.NewExpr().Add(3, x).Add(2, y))
	s := p.Solve(Options{})
	if s.Status != Optimal || math.Abs(s.Objective-6) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 6", s.Status, s.Objective)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := NewProblem()
	x := p.AddBinary("x")
	p.AddConstraint("", lp.NewExpr().Add(1, x), lp.GE, 2)
	p.SetObjective(lp.Maximize, lp.NewExpr().Add(1, x))
	s := p.Solve(Options{})
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

// TestFractionalOnlyInfeasible: relaxation feasible but no integer point.
func TestFractionalOnlyInfeasible(t *testing.T) {
	// 0.5 <= x <= 0.7, x integer: no integral point.
	p := NewProblem()
	x := p.AddInteger("x", 0, 1)
	p.AddConstraint("", lp.NewExpr().Add(1, x), lp.GE, 0.4)
	p.AddConstraint("", lp.NewExpr().Add(1, x), lp.LE, 0.7)
	p.SetObjective(lp.Maximize, lp.NewExpr().Add(1, x))
	s := p.Solve(Options{})
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestNodeBudgetNoIncumbent(t *testing.T) {
	// A problem that needs several nodes; with MaxNodes=1 the root is
	// fractional and we must report NoIncumbent — the Table 1/2 "—" row.
	p := NewProblem()
	vars := make([]lp.VarID, 8)
	obj := lp.NewExpr()
	con := lp.NewExpr()
	r := rng.New(1)
	for i := range vars {
		vars[i] = p.AddBinary("")
		obj.Add(3+r.Float64(), vars[i])
		con.Add(2+r.Float64(), vars[i])
	}
	p.AddConstraint("", con, lp.LE, 9.5)
	p.SetObjective(lp.Maximize, obj)
	s := p.Solve(Options{MaxNodes: 1})
	if s.Status != NoIncumbent {
		t.Fatalf("status = %v, want no-incumbent under 1-node budget", s.Status)
	}
	full := p.Solve(Options{})
	if full.Status != Optimal {
		t.Fatalf("full solve status = %v", full.Status)
	}
}

func TestTimeBudget(t *testing.T) {
	p := NewProblem()
	// A moderately large random knapsack so it doesn't finish instantly.
	r := rng.New(2)
	obj := lp.NewExpr()
	con := lp.NewExpr()
	for i := 0; i < 25; i++ {
		v := p.AddBinary("")
		obj.Add(1+r.Float64(), v)
		con.Add(1+r.Float64(), v)
	}
	p.AddConstraint("", con, lp.LE, 12.3)
	p.SetObjective(lp.Maximize, obj)
	start := time.Now()
	s := p.Solve(Options{MaxTime: 50 * time.Millisecond, MaxNodes: 1 << 30})
	if time.Since(start) > 5*time.Second {
		t.Fatal("time budget ignored")
	}
	if s.Nodes == 0 {
		t.Fatal("no nodes explored")
	}
}

func TestBranchingCorrectAgainstBruteForce(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 15; trial++ {
		n := 2 + r.Intn(5)
		p := NewProblem()
		vars := make([]lp.VarID, n)
		weights := make([]float64, n)
		values := make([]float64, n)
		capacity := 0.0
		obj := lp.NewExpr()
		con := lp.NewExpr()
		for i := range vars {
			vars[i] = p.AddBinary("")
			weights[i] = math.Floor(r.Uniform(1, 10))
			values[i] = math.Floor(r.Uniform(1, 20))
			capacity += weights[i]
			obj.Add(values[i], vars[i])
			con.Add(weights[i], vars[i])
		}
		capacity = math.Floor(capacity / 2)
		p.AddConstraint("", con, lp.LE, capacity)
		p.SetObjective(lp.Maximize, obj)
		s := p.Solve(Options{})
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		// Brute force.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					v += values[i]
				}
			}
			if w <= capacity && v > best {
				best = v
			}
		}
		if math.Abs(s.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: milp %v, brute force %v", trial, s.Objective, best)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []Status{Optimal, Feasible, NoIncumbent, Infeasible} {
		if s.String() == "" || s.String() == "unknown" {
			t.Fatalf("bad status string for %d", int(s))
		}
	}
}
