package milp

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/lp"
)

// benchPackingMILP is the alloc-style packing MILP (integral placement of
// typed requests over capacitated hosts minimizing peak utilization) at a
// size whose tree runs a few hundred nodes — the analyzer's RatioOverride
// workload the warm engine was built for.
func benchPackingMILP() *Problem {
	dem := [][]float64{{1, 2}, {2, 1}, {4, 4}, {8, 2}, {1, 1}}
	caps := [][]float64{{16, 16}, {32, 24}, {24, 32}}
	counts := []int{6, 5, 3, 2, 7}
	T, H, R := len(counts), len(caps), 2
	p := NewProblem()
	u := p.AddVariable("u", 0, math.Inf(1))
	y := make([]lp.VarID, T*H)
	for t := 0; t < T; t++ {
		for h := 0; h < H; h++ {
			y[t*H+h] = p.AddInteger(fmt.Sprintf("y_%d_%d", t, h), 0, float64(counts[t]))
		}
	}
	for t := 0; t < T; t++ {
		e := lp.NewExpr()
		for h := 0; h < H; h++ {
			e.Add(1, y[t*H+h])
		}
		p.AddConstraint("", e, lp.EQ, float64(counts[t]))
	}
	for h := 0; h < H; h++ {
		for r := 0; r < R; r++ {
			e := lp.NewExpr()
			for t := 0; t < T; t++ {
				e.Add(dem[t][r], y[t*H+h])
			}
			e.Add(-caps[h][r], u)
			p.AddConstraint("", e, lp.LE, 0)
		}
	}
	p.SetObjective(lp.Minimize, lp.NewExpr().Add(1, u))
	return p
}

// benchNodes runs the packing MILP b.N times under opts and reports node
// throughput — the PR's headline number is nodes/sec warm vs cold-clone.
func benchNodes(b *testing.B, opts Options) {
	p := benchPackingMILP()
	nodes := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := p.Solve(opts)
		if s.Status != Optimal {
			b.Fatalf("status %v after %d nodes", s.Status, s.Nodes)
		}
		nodes += s.Nodes
	}
	b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/sec")
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/solve")
}

// BenchmarkPackingNodesColdClone is the legacy engine baseline: full LP
// clone and cold dense-path solve per node.
func BenchmarkPackingNodesColdClone(b *testing.B) {
	benchNodes(b, Options{ColdClone: true})
}

// BenchmarkPackingNodesWarm is the clone-free warm engine, sequential.
func BenchmarkPackingNodesWarm(b *testing.B) {
	benchNodes(b, Options{})
}

// BenchmarkPackingNodesParallel is the warm engine with wave-parallel LP
// solves (identical results, more cores).
func BenchmarkPackingNodesParallel(b *testing.B) {
	benchNodes(b, Options{Workers: 4})
}
