// Command tereport regenerates every table and figure of the paper's
// evaluation (§5) in one run and prints them in the paper's layout.
//
// Usage:
//
//	tereport [-quick] [-table N] [-figure N] [-seed S]
//
// Without -table/-figure flags it runs everything. -quick uses the
// scaled-down setup (smaller DNN, shorter training) that finishes in a
// couple of minutes on a laptop; the default mirrors §5's configuration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "use the scaled-down configuration")
	table := flag.Int("table", 0, "only regenerate this table (1, 2 or 3)")
	figure := flag.Int("figure", 0, "only regenerate this figure (3 or 5)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	verbose := flag.Bool("v", false, "progress output")
	extended := flag.Bool("extended", false, "also run hill-climbing and simulated-annealing baselines")
	shift := flag.Bool("shift", false, "also evaluate the trained models under a fiber-cut traffic shift")
	ablations := flag.Bool("ablations", false, "run the DESIGN.md §5 ablations instead of the tables")
	topo := flag.String("topology", "abilene", "topology: abilene, geant, b4, triangle")
	metrics := flag.String("metrics", "", `dump telemetry to stderr at exit: "text" or "json"; also adds a telemetry column to the comparison tables (default off)`)
	flag.Parse()

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		defer func() {
			snap := reg.Snapshot()
			if *metrics == "json" {
				enc := json.NewEncoder(os.Stderr)
				enc.SetIndent("", "  ")
				if err := enc.Encode(snap); err != nil {
					fmt.Fprintf(os.Stderr, "# metrics dump failed: %v\n", err)
				}
				return
			}
			if err := snap.WriteText(os.Stderr); err != nil {
				fmt.Fprintf(os.Stderr, "# metrics dump failed: %v\n", err)
			}
		}()
	}

	all := *table == 0 && *figure == 0 && !*ablations
	logf := func(string) {}
	if *verbose {
		logf = func(s string) { fmt.Fprintln(os.Stderr, "# "+s) }
	}

	setup := func(v dote.Variant) *experiments.Setup {
		opts := experiments.DefaultSetup(v)
		if *quick {
			opts = experiments.QuickSetup(v)
		}
		opts.Topology = *topo
		opts.Seed = *seed
		opts.Verbose = logf
		opts.Obs = reg
		s, err := experiments.Prepare(opts)
		if err != nil {
			fatal(err)
		}
		return s
	}
	budgets := experiments.DefaultBudgets()
	budgets.Gradient.Obs = reg
	if *quick {
		budgets.RandomEvals = 100
		budgets.WhiteboxNodes = 30
		budgets.WhiteboxTime = 20 * time.Second
		// The gradient search is cheap enough to keep its full budget even
		// in quick mode; its wall-clock stays around a second.
	}

	var currSetup *experiments.Setup

	runComparison := func(s *experiments.Setup) []experiments.MethodRow {
		var rows []experiments.MethodRow
		var err error
		if *extended {
			rows, err = experiments.RunComparisonExtended(s, budgets)
		} else {
			rows, err = experiments.RunComparison(s, budgets)
		}
		if err != nil {
			fatal(err)
		}
		return rows
	}
	reportShift := func(s *experiments.Setup) {
		if !*shift {
			return
		}
		res, err := experiments.ShiftEvaluation(s, []int{0, 7, 23}, 0.6, 40)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("under a fiber-cut-style shift: test mean ratio %.3f -> %.3f (max %.2f -> %.2f)\n",
			res.Normal.MeanRatio, res.Shifted.MeanRatio, res.Normal.MaxRatio, res.Shifted.MaxRatio)
	}

	if *ablations {
		runAblations(setup, *quick)
		return
	}

	if all || *table == 1 {
		s := setup(dote.Hist)
		printComparison("TABLE 1: DOTE-Hist (history window = 12 epochs)", runComparison(s))
		reportShift(s)
	}
	if (all || *table == 2 || *table == 3 || *figure == 5) && currSetup == nil {
		currSetup = setup(dote.Curr)
	}
	if all || *table == 2 {
		printComparison("TABLE 2: DOTE-Curr (input = current matrix)", runComparison(currSetup))
		reportShift(currSetup)
	}
	if all || *table == 3 {
		base := budgets.Gradient
		rows, err := experiments.RunSensitivity(currSetup, []float64{0.01, 0.005, 0.05}, base)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nTABLE 3: sensitivity to the multiplier step size α_λ (α_d = α_f = 0.01)")
		fmt.Printf("%-12s %-16s %s\n", "alpha_L", "Discovered ratio", "Runtime")
		for _, r := range rows {
			fmt.Printf("%-12g %-16s %v\n", r.AlphaL, fmt.Sprintf("%.2fx", r.Ratio), r.Runtime.Round(time.Millisecond))
		}
	}
	if all || *figure == 3 {
		rows, err := experiments.Figure3()
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nFIGURE 3: split ratios alone do not determine MLU (triangle, caps=100,")
		fmt.Println("demands 1->2 = 1->3 = 100)")
		for _, r := range rows {
			fmt.Printf("  %-30s MLU = %g\n", r.Name, r.MLU)
		}
	}
	if all || *figure == 5 {
		gcfg := budgets.Gradient
		gcfg.Seed = *seed + 400
		res, err := core.GradientSearch(currSetup.Target, gcfg)
		if err != nil {
			fatal(err)
		}
		if res.FaultCount > 0 {
			fmt.Fprintf(os.Stderr, "# figure 5 search: %d restart fault(s) contained (stop reason: %s)\n",
				res.FaultCount, res.StopReason)
		}
		if !res.Found {
			fmt.Printf("\nFIGURE 5: no adversarial input found (stop reason: %s); cannot draw CDF\n", res.StopReason)
		} else {
			data := experiments.Figure5(currSetup, res.BestX)
			fmt.Println("\nFIGURE 5: demand sizes (normalized by avg link capacity), CDF")
			fmt.Printf("%-12s %-12s %s\n", "threshold", "training", "adversarial")
			for i, th := range data.Thresholds {
				fmt.Printf("%-12.2f %-12.3f %.3f\n", th, data.Training[i], data.Adversarial[i])
			}
			fmt.Printf("share of volume on top-5 pairs: training %.0f%%, adversarial %.0f%%\n",
				100*data.TopShareTraining, 100*data.TopShareAdversarial)
		}
	}
}

// runAblations executes the DESIGN.md §5 ablation suite on a DOTE-Curr
// setup and prints one table per knob.
func runAblations(setup func(dote.Variant) *experiments.Setup, quick bool) {
	s := setup(dote.Curr)
	base := core.DefaultGradientConfig()
	if quick {
		base.Iters = 100
		base.Restarts = 1
	}
	printAblation := func(title string, rows []experiments.AblationRow, err error) {
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nABLATION: " + title)
		fmt.Printf("%-27s %-9s %-9s %-11s %s\n", "config", "ratio", "runtime", "grad evals", "true evals")
		for _, r := range rows {
			ratio := "—"
			if r.Found {
				ratio = fmt.Sprintf("%.2fx", r.Ratio)
			}
			trueEvals := "—" // analytic count unavailable (e.g. exact chain rule)
			if r.TrueEvals >= 0 {
				trueEvals = fmt.Sprintf("%d", r.TrueEvals)
			}
			fmt.Printf("%-27s %-9s %-9s %-11d %s\n", r.Config, ratio, r.Runtime.Round(time.Millisecond), r.GradEvals, trueEvals)
		}
	}
	rows, err := experiments.AblationInnerSteps(s, []int{1, 2, 4}, base)
	printAblation("inner ascent steps T (Eq. 5)", rows, err)
	rows, err = experiments.AblationRestarts(s, []int{1, 2, 4}, base)
	printAblation("random restarts", rows, err)
	rows, err = experiments.AblationObjective(s, base)
	printAblation("objective (Lagrangian vs direct ascent)", rows, err)
	rows, err = experiments.AblationMomentum(s, []float64{0, 0.5, 0.9}, base)
	printAblation("momentum on the demand ascent", rows, err)
	estBase := base
	estBase.Iters = 40
	rows, err = experiments.AblationGradientEstimator(s, estBase)
	printAblation("gradient estimator (gray-box spectrum)", rows, err)
	fmt.Println("\nPARALLELISM: gradients/second, scalar workers vs lock-step batch")
	prs := experiments.AblationParallelism(s, []int{1, 2, 4}, 32)
	for _, pr := range prs {
		fmt.Printf("workers=%d: %.0f grads/s\n", pr.Workers, pr.Throughput)
	}
	if len(prs) > 0 && prs[0].BatchedThroughput > 0 {
		fmt.Printf("batched engine (one [32,n] lock-step batch): %.0f grads/s (%.2fx vs 1 worker)\n",
			prs[0].BatchedThroughput, prs[0].BatchedThroughput/prs[0].Throughput)
	}
}

func printComparison(title string, rows []experiments.MethodRow) {
	fmt.Println("\n" + title)
	// The telemetry column only appears when at least one row carries a
	// summary (i.e. -metrics was given), so default output is unchanged.
	withTelemetry := false
	for _, r := range rows {
		if r.Telemetry != "" {
			withTelemetry = true
			break
		}
	}
	if withTelemetry {
		fmt.Printf("%-28s %-18s %-12s %-34s %s\n", "Method", "Discovered ratio", "Runtime", "Notes", "Telemetry")
	} else {
		fmt.Printf("%-28s %-18s %-12s %s\n", "Method", "Discovered ratio", "Runtime", "Notes")
	}
	for _, r := range rows {
		rt := "-"
		if r.Runtime > 0 {
			rt = r.Runtime.Round(time.Millisecond).String()
		}
		if withTelemetry {
			tel := r.Telemetry
			if tel == "" {
				tel = "-"
			}
			fmt.Printf("%-28s %-18s %-12s %-34s %s\n", r.Method, r.FormatRatio(), rt, r.Note, tel)
			continue
		}
		fmt.Printf("%-28s %-18s %-12s %s\n", r.Method, r.FormatRatio(), rt, r.Note)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tereport:", err)
	os.Exit(1)
}
