package main

import (
	"bufio"
	"os"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipelineGrad      	   26404	     92519 ns/op	   26570 B/op	      17 allocs/op
BenchmarkGradSearchEngines/restarts=4/batched        	      20	  63086924 ns/op	         1.989 ratio	 9664805 B/op	    2692 allocs/op
PASS
ok  	repro	9.136s
`
	snap, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Pkg != "repro" || !strings.Contains(snap.CPU, "Xeon") {
		t.Fatalf("header: %+v", snap)
	}
	if len(snap.Results) != 2 {
		t.Fatalf("got %d results", len(snap.Results))
	}
	r := snap.Results[0]
	if r.Name != "BenchmarkPipelineGrad" || r.Iters != 26404 || r.NsPerOp != 92519 {
		t.Fatalf("result 0: %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 26570 || r.AllocsPerOp == nil || *r.AllocsPerOp != 17 {
		t.Fatalf("result 0 mem columns: %+v", r)
	}
	e := snap.Results[1]
	if e.Name != "BenchmarkGradSearchEngines/restarts=4/batched" {
		t.Fatalf("result 1 name: %q", e.Name)
	}
	if e.Metrics["ratio"] != 1.989 {
		t.Fatalf("result 1 custom metric: %+v", e.Metrics)
	}
}

func TestWriteCompare(t *testing.T) {
	bp := func(v float64) *float64 { return &v }
	base := &Snapshot{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: bp(64)},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}}
	curr := &Snapshot{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 500},
		{Name: "BenchmarkNew", NsPerOp: 42},
	}}
	var buf strings.Builder
	writeCompare(&buf, base, curr)
	out := buf.String()
	for _, want := range []string{"-50.00%", "(new)", "(gone)", "old ns/op"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCompareNoOverlap(t *testing.T) {
	base := &Snapshot{Results: []Result{{Name: "BenchmarkX", NsPerOp: 1}}}
	curr := &Snapshot{Results: []Result{{Name: "BenchmarkY", NsPerOp: 2}}}
	var buf strings.Builder
	writeCompare(&buf, base, curr)
	if !strings.Contains(buf.String(), "no common benchmarks") {
		t.Fatalf("want no-overlap notice, got:\n%s", buf.String())
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	if _, err := readSnapshot("/nonexistent/path.json"); err == nil {
		t.Fatal("want error for missing baseline")
	}
	dir := t.TempDir()
	bad := dir + "/bad.json"
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshot(bad); err == nil {
		t.Fatal("want error for malformed baseline")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestParseLineRejectsGarbage(t *testing.T) {
	if _, err := parseLine("BenchmarkX notanumber"); err == nil {
		t.Fatal("want error for bad iteration count")
	}
	if _, err := parseLine("BenchmarkX 10 abc ns/op"); err == nil {
		t.Fatal("want error for bad metric value")
	}
}
