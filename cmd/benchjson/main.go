// Command benchjson converts `go test -bench` text output into a JSON
// snapshot, so benchmark runs can be archived and diffed across PRs.
//
// Usage:
//
//	go test -run XXX -bench . -benchmem . | benchjson -out BENCH.json
//
// Standard columns (ns/op, B/op, allocs/op, MB/s) get their own fields;
// anything else — such as this repo's "ratio" metric, the discovered
// performance ratio of Eq. 2 — lands in the metrics map verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the whole file: the run's environment header plus results.
type Snapshot struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	compare := flag.String("compare", "", "baseline snapshot to diff against (benchstat-style table on stderr; never fails the run)")
	flag.Parse()

	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *compare != "" {
		// Comparison is informational: a missing or unreadable baseline
		// warns and continues, so fresh branches and renamed files never
		// break the bench pipeline.
		if base, err := readSnapshot(*compare); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: skipping compare: %v\n", err)
		} else {
			writeCompare(os.Stderr, base, snap)
		}
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(snap.Results), *out)
}

// readSnapshot loads a previously written snapshot file.
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{}
	if err := json.Unmarshal(data, snap); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return snap, nil
}

// writeCompare prints a benchstat-style old/new table for benchmarks present
// in both snapshots. Single-run snapshots carry no variance information, so
// deltas are reported without significance claims and never gate anything.
func writeCompare(w io.Writer, base, curr *Snapshot) {
	old := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		old[r.Name] = r
	}
	matched := false
	for _, r := range curr.Results {
		if _, ok := old[r.Name]; ok {
			matched = true
			break
		}
	}
	if !matched {
		fmt.Fprintln(w, "benchjson: compare: no common benchmarks with baseline")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "name\told ns/op\tnew ns/op\tdelta")
	for _, r := range curr.Results {
		b, ok := old[r.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\t(new)\n", strings.TrimPrefix(r.Name, "Benchmark"), r.NsPerOp)
			continue
		}
		delta := "~"
		if b.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.2f%%", 100*(r.NsPerOp-b.NsPerOp)/b.NsPerOp)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\n", strings.TrimPrefix(r.Name, "Benchmark"), b.NsPerOp, r.NsPerOp, delta)
	}
	for _, b := range base.Results {
		found := false
		for _, r := range curr.Results {
			if r.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(tw, "%s\t%.0f\t-\t(gone)\n", strings.TrimPrefix(b.Name, "Benchmark"), b.NsPerOp)
		}
	}
	tw.Flush()
}

func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			snap.Results = append(snap.Results, *r)
		}
	}
	return snap, sc.Err()
}

// parseLine decodes one result line:
//
//	BenchmarkFoo/sub-8   100   12345 ns/op   1.97 ratio   64 B/op   2 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseLine(line string) (*Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("short benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("iteration count in %q: %v", line, err)
	}
	r := &Result{Name: fields[0], Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("metric value in %q: %v", line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, nil
}
