// Command benchjson converts `go test -bench` text output into a JSON
// snapshot, so benchmark runs can be archived and diffed across PRs.
//
// Usage:
//
//	go test -run XXX -bench . -benchmem . | benchjson -out BENCH.json
//
// Standard columns (ns/op, B/op, allocs/op, MB/s) get their own fields;
// anything else — such as this repo's "ratio" metric, the discovered
// performance ratio of Eq. 2 — lands in the metrics map verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the whole file: the run's environment header plus results.
type Snapshot struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(snap.Results), *out)
}

func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			snap.Results = append(snap.Results, *r)
		}
	}
	return snap, sc.Err()
}

// parseLine decodes one result line:
//
//	BenchmarkFoo/sub-8   100   12345 ns/op   1.97 ratio   64 B/op   2 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseLine(line string) (*Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("short benchmark line: %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("iteration count in %q: %v", line, err)
	}
	r := &Result{Name: fields[0], Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("metric value in %q: %v", line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, nil
}
