package main

// The analyzer-as-a-service entry points:
//
//	serve  long-lived daemon — job queue over HTTP, work-stealing restart
//	       pool, NDJSON streaming, Prometheus /metrics
//	gate   CI killer app — POST a checkpoint, block until the adversarial
//	       ratio bound is computed, exit 2 when it exceeds the threshold
//
// gate speaks to a running daemon (-addr) or, without one, boots an
// in-process daemon on a loopback port for the single job — same code path
// either way, so CI scripts can start simple and move to a shared daemon
// without changing semantics.

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/lp"
	"repro/internal/serve"
	"repro/internal/te"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8473", "address to serve the job API on")
	workers := fs.Int("workers", 0, "work-stealing pool size shared by all jobs' restarts (0 = GOMAXPROCS)")
	jobs := fs.Int("jobs", 2, "jobs running concurrently (each additionally shards its restarts over the pool)")
	cacheEntries := fs.Int("cache-entries", 1<<16, "entries per shared per-checkpoint eval cache (negative disables sharing)")
	metrics := fs.String("metrics", "", `flush a telemetry snapshot to stderr after every job completes: "text", "json" or "prom" (the /metrics endpoint is always on)`)
	lpMeth := fs.String("lp", "auto", "LP simplex engine: dense, revised, or auto")
	quiet := fs.Bool("q", false, "suppress per-job log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, ok := lp.ParseMethod(*lpMeth)
	if !ok {
		return fmt.Errorf("-lp=%q: want dense, revised, or auto", *lpMeth)
	}
	te.SetLPMethod(m)
	switch *metrics {
	case "", "text", "json", "prom", "prometheus":
	default:
		return fmt.Errorf("-metrics=%q: want text, json, or prom", *metrics)
	}

	cfg := serve.Config{
		Workers:        *workers,
		JobConcurrency: *jobs,
		CacheEntries:   *cacheEntries,
	}
	if *metrics != "" {
		cfg.MetricsDump = os.Stderr
		cfg.MetricsFormat = *metrics
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", a...)
		}
	}
	s := serve.New(cfg)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "# shutting down (running jobs report best-so-far)")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()
	fmt.Printf("e2eperf daemon listening on http://%s (POST /jobs, GET /metrics)\n", ln.Addr())
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

func cmdGate(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon URL (e.g. http://127.0.0.1:8473); empty boots an in-process daemon for this one gate")
	setupPath := fs.String("setup", "", "trained setup checkpoint to gate (required)")
	threshold := fs.Float64("threshold", 0, "maximum acceptable adversarial ratio; exceeding it exits 2 (required)")
	iters := fs.Int("iters", 400, "outer GDA iterations")
	restarts := fs.Int("restarts", 4, "random restarts")
	seed := fs.Uint64("seed", 1, "experiment seed (the search derives seed+400, matching `attack`)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget; on expiry the gate judges the best-so-far bound (0 = unlimited)")
	opaque := fs.Bool("opaque", false, "gate the gray-box pipeline (fused routing+MLU, FD gradients)")
	fdStep := fs.Float64("fd-step", 1e-4, "finite-difference probe step for -opaque")
	sparse := fs.Bool("sparse", true, "with -opaque: incremental sparse FD probing (false forces dense)")
	label := fs.String("label", "gate", "job label echoed in daemon logs and events")
	jsonOut := fs.String("json", "", "write the full result JSON (adversarial input included) to this file")
	verbose := fs.Bool("v", false, "stream improvement events to stderr as they happen")
	lpMeth := fs.String("lp", "auto", "LP simplex engine for in-process mode: dense, revised, or auto")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *setupPath == "" {
		return fmt.Errorf("-setup is required")
	}
	if *threshold <= 0 {
		return fmt.Errorf("-threshold must be positive")
	}
	ckpt, err := os.ReadFile(*setupPath)
	if err != nil {
		return err
	}

	spec := serve.JobSpec{
		Label:      *label,
		Checkpoint: ckpt,
		Threshold:  *threshold,
		Scenario: serve.Scenario{
			Opaque: *opaque,
			Dense:  *opaque && !*sparse,
			FDStep: *fdStep,
		},
		Budget: serve.Budget{
			Iters:    *iters,
			Restarts: *restarts,
			// Same derivation as `attack`, so a gate verdict is bitwise
			// reproducible by a one-shot attack with the same -seed.
			Seed: *seed + 400,
			// No memoization: the bound must come from fresh LP scoring,
			// independent of whatever other jobs populated shared caches.
			EvalCache: -1,
			TimeoutMS: timeout.Milliseconds(),
		},
	}

	client := &serve.Client{Base: *addr}
	if *addr == "" {
		m, ok := lp.ParseMethod(*lpMeth)
		if !ok {
			return fmt.Errorf("-lp=%q: want dense, revised, or auto", *lpMeth)
		}
		te.SetLPMethod(m)
		s := serve.New(serve.Config{JobConcurrency: 1})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = hs.Shutdown(ctx)
			_ = s.Shutdown(ctx)
		}()
		client.Base = "http://" + ln.Addr().String()
	}

	out, err := client.Gate(context.Background(), spec, func(ev serve.Event) error {
		switch ev.Type {
		case "running":
			fmt.Fprintf(os.Stderr, "# gating %s\n", ev.Desc)
		case "improved":
			if *verbose {
				fmt.Fprintf(os.Stderr, "# improved: ratio %.4f at iter %d (+%dms)\n",
					ev.Ratio, ev.Iter, ev.ElapsedMS)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if out.StopReason != "" && out.StopReason != "converged" {
		fmt.Fprintf(os.Stderr, "# search stopped early: %s (bound is best-so-far)\n", out.StopReason)
	}
	if *jsonOut != "" && len(out.Job.Result) > 0 {
		if err := os.WriteFile(*jsonOut, out.Job.Result, 0o644); err != nil {
			return err
		}
		fmt.Printf("result written to %s\n", *jsonOut)
	}
	verdict := "PASS"
	if !out.Pass {
		verdict = "FAIL"
	}
	fmt.Printf("gate: adversarial ratio bound %.6g vs threshold %g — %s\n",
		out.Ratio, *threshold, verdict)
	if !out.Pass {
		os.Exit(2)
	}
	return nil
}
