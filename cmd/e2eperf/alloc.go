package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/alloc"
	"repro/internal/core"
)

// cmdAlloc runs the second case study end to end: train (or load) the VM
// allocator's scorer, then attack it over request-mix vectors with the same
// gray-box gradient search the TE case study uses, scoring every candidate
// against the packing MILP through RatioOverride. Honors the shared
// -timeout, -metrics, -lp, -quick, -seed and -weights flags; -variant,
// -topology and -setup are TE-specific and ignored here.
func cmdAlloc(args []string) error {
	c := newCommon("alloc")
	iters := c.fs.Int("iters", 200, "outer ascent iterations per restart")
	restarts := c.fs.Int("restarts", 6, "random restarts")
	alphaD := c.fs.Float64("alpha-d", 0.5, "request-mix step size")
	evalEvery := c.fs.Int("eval-every", 2, "iterations between true MILP-ratio evaluations")
	epochs := c.fs.Int("epochs", 0, "scorer training epochs (0 = config default)")
	opaque := c.fs.Bool("opaque", false, "treat the whole allocator as one black box (FD/SPSA over request mixes) instead of the staged gray-box pipeline")
	spsa := c.fs.Int("spsa", 0, "with an opaque stage: estimate gradients with this many SPSA probes instead of coordinate FD (0 = FD)")
	fdStep := c.fs.Float64("fd-step", 1e-4, "finite-difference / SPSA probe step")
	evalCacheSize := c.fs.Int("eval-cache", 4096, "memoize MILP-ratio scoring in a cache of this many entries (0 = off)")
	milpWorkers := c.fs.Int("milp-workers", 1, "concurrent LP relaxations per packing-MILP wave (results are identical for any value)")
	jsonOut := c.fs.String("json", "", "write the full result (including the adversarial mix) to this file")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	stop, err := c.instrument()
	if err != nil {
		return err
	}
	defer stop()

	cfg := alloc.DefaultConfig()
	if *c.quick {
		cfg = alloc.QuickConfig()
	}
	if *c.hidden != "" {
		widths, err := parseWidths(*c.hidden)
		if err != nil {
			return fmt.Errorf("-hidden: %w", err)
		}
		cfg.Hidden = widths
	}
	if *epochs > 0 {
		cfg.TrainEpochs = *epochs
	}
	cfg.Seed = *c.seed
	cfg.MILPWorkers = *milpWorkers
	sys, err := alloc.New(cfg)
	if err != nil {
		return err
	}
	// Surface the packing MILP's warm-engine telemetry (milp.nodes,
	// milp.warm_hits, lp.bounds.* …) through the shared -metrics registry.
	sys.Obs = c.registry()
	fmt.Printf("VM allocator: %d types x %d hosts x %d resources, request-mix box [0, %g]\n",
		sys.T, sys.H, sys.R, cfg.MaxCount)

	// -weights is the scorer checkpoint: load it when the file exists so the
	// attack hits exactly a previously trained scorer, train and save
	// otherwise.
	loaded := false
	if *c.weights != "" {
		if f, err := os.Open(*c.weights); err == nil {
			lerr := sys.LoadScorer(f)
			f.Close()
			if lerr != nil {
				return fmt.Errorf("loading %s: %w", *c.weights, lerr)
			}
			fmt.Fprintf(os.Stderr, "# loaded scorer checkpoint %s (training skipped)\n", *c.weights)
			loaded = true
		}
	}
	if !loaded {
		var progress func(string)
		if *c.verbose {
			progress = func(s string) { fmt.Fprintln(os.Stderr, "# "+s) }
		}
		sys.Train(progress)
		if *c.weights != "" {
			f, err := os.Create(*c.weights)
			if err != nil {
				return err
			}
			if err := sys.SaveScorer(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("scorer checkpoint saved to %s\n", *c.weights)
		}
	}

	avg, err := sys.Explain(sys.AverageMix())
	if err != nil {
		return err
	}
	fmt.Printf("average mix %v: packing ratio %.4f (sys %.4f / opt %.4f), fragmentation %.3f [milp %s, %d nodes, gap %.2g]\n",
		avg.Counts, avg.Ratio, avg.SysUtil, avg.OptUtil, avg.Fragmentation, avg.MILPStatus, avg.MILPNodes, avg.Gap)

	target := sys.Target(alloc.PipelineOptions{
		Opaque:      *opaque,
		SPSASamples: *spsa,
		FDStep:      *fdStep,
		Seed:        *c.seed,
	})
	gcfg := core.DefaultGradientConfig()
	gcfg.Iters = *iters
	gcfg.Restarts = *restarts
	gcfg.AlphaD = *alphaD
	gcfg.EvalEvery = *evalEvery
	gcfg.Seed = *c.seed + 400
	gcfg.Obs = c.registry()
	if *evalCacheSize > 0 {
		// Quantum 1.0 aligns cache keys with Quantize's integer rounding, so
		// every continuous point mapping to the same VM counts scores once.
		gcfg.EvalCache = core.NewEvalCache(*evalCacheSize, 1.0)
	}
	ctx, cancel := c.searchCtx()
	defer cancel()
	// Bind the search context into the baseline so -timeout also interrupts
	// in-flight packing MILP solves, not just the outer search loop.
	sys.Bind(ctx)
	res, err := core.GradientSearchContext(ctx, target, gcfg)
	if err != nil {
		return err
	}
	// The search context may already be expired here (that's how -timeout
	// ends a run); the final report's Explain solves must not inherit it.
	sys.Bind(context.Background())
	fmt.Println(res)
	reportStop(res)
	if res.Found {
		adv, err := sys.Explain(res.BestX)
		if err != nil {
			return err
		}
		fmt.Printf("worst-case mix %v: packing ratio %.4f (sys %.4f / opt %.4f), fragmentation %.3f [milp %s, %d nodes, gap %.2g, lp bound %.4f]\n",
			adv.Counts, adv.Ratio, adv.SysUtil, adv.OptUtil, adv.Fragmentation, adv.MILPStatus, adv.MILPNodes, adv.Gap, adv.LPBound)
		fmt.Printf("=> the learned allocator strands %.1f%% more peak capacity than the exact packer on this mix (vs %.1f%% at the average mix)\n",
			100*(adv.Ratio-1), 100*(avg.Ratio-1))
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("result written to %s\n", *jsonOut)
	}
	return nil
}
