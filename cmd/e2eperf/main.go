// Command e2eperf is the analyzer's main CLI. Subcommands:
//
//	train       train a DOTE variant on synthetic traffic and save weights
//	attack      run the gray-box gradient search against a trained model
//	compare     run all methods (test set, random, white-box, gradient)
//	sensitivity reproduce the step-size sensitivity study
//	corpus      train a GAN corpus of adversarial inputs (§6)
//	harden      adversarially retrain a model (§6)
//	versus      compare DOTE-Hist against a Teal-like baseline (§6)
//	simulate    replay a saved attack result through the fluid simulator
//	evaluate    score a trained model on externally supplied traffic matrices
//	serve       run the analyzer daemon: job queue over HTTP, /metrics
//	gate        CI gate: bound a checkpoint's adversarial ratio, exit 2 on breach
//	alloc       second case study: attack the ML-augmented VM allocator
//
// Every subcommand accepts -quick for laptop-scale budgets and -seed for
// reproducibility. Trained state moves between invocations via -setup
// (full checkpoint, skips retraining) or -weights (network weights only).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/experiments"
	"repro/internal/gan"
	"repro/internal/lp"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/robust"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/te"
	"repro/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "train":
		err = cmdTrain(args)
	case "attack":
		err = cmdAttack(args)
	case "compare":
		err = cmdCompare(args)
	case "sensitivity":
		err = cmdSensitivity(args)
	case "corpus":
		err = cmdCorpus(args)
	case "harden":
		err = cmdHarden(args)
	case "versus":
		err = cmdVersus(args)
	case "simulate":
		err = cmdSimulate(args)
	case "evaluate":
		err = cmdEvaluate(args)
	case "serve":
		err = cmdServe(args)
	case "gate":
		err = cmdGate(args)
	case "alloc":
		err = cmdAlloc(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "e2eperf %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: e2eperf <train|attack|compare|sensitivity|corpus|harden|versus|simulate|evaluate|serve|gate|alloc> [flags]
run "e2eperf <subcommand> -h" for flags`)
	os.Exit(2)
}

// commonFlags wires the shared setup flags into a FlagSet.
type commonFlags struct {
	fs       *flag.FlagSet
	variant  *string
	topology *string
	hidden   *string
	quick    *bool
	seed     *uint64
	verbose  *bool
	weights  *string
	setup    *string
	timeout  *time.Duration
	metrics  *string
	pprofTo  *string
	lpMeth   *string

	// reg is the telemetry registry, created lazily by registry() when
	// -metrics was given.
	reg *obs.Registry
}

func newCommon(name string) *commonFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &commonFlags{
		fs:       fs,
		variant:  fs.String("variant", "curr", "dote variant: hist or curr"),
		topology: fs.String("topology", "", "network topology: abilene (default), b4, geant, or triangle"),
		hidden:   fs.String("hidden", "", "comma-separated DNN hidden widths (default per -quick)"),
		quick:    fs.Bool("quick", false, "scaled-down configuration"),
		seed:     fs.Uint64("seed", 1, "experiment seed"),
		verbose:  fs.Bool("v", false, "progress output"),
		weights:  fs.String("weights", "", "model weights file (load if present for attack/..., save for train)"),
		setup:    fs.String("setup", "", "setup checkpoint: load if the file exists (skips training), create it otherwise"),
		timeout:  fs.Duration("timeout", 0, "wall-clock budget per gradient search; on expiry the best-so-far result is reported (0 = unlimited)"),
		metrics:  fs.String("metrics", "", `dump telemetry to stderr at exit: "text", "json" or "prom" (default off; off means zero instrumentation overhead)`),
		pprofTo:  fs.String("pprof", "", "write a CPU profile of the whole run to this file"),
		lpMeth:   fs.String("lp", "auto", "LP simplex engine: dense, revised, or auto (size-based dispatch: dense stays the exactness oracle at Abilene/Geant scale, revised takes over on tegen-grown topologies)"),
	}
}

// registry returns the run's telemetry registry, or nil when -metrics was
// not given — the nil flows through every Obs field and keeps the hot paths
// on their uninstrumented branches.
func (c *commonFlags) registry() *obs.Registry {
	if *c.metrics == "" {
		return nil
	}
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	return c.reg
}

// dumpMetrics writes the registry snapshot to stderr in the -metrics format.
// Safe to defer unconditionally: without -metrics there is no registry and
// nothing is printed.
func (c *commonFlags) dumpMetrics() {
	if c.reg == nil {
		return
	}
	// Same snapshot-and-render path as the daemon's /metrics endpoint and
	// per-job flushes (obs.Snapshot.Write), so every dump format agrees.
	if err := c.reg.Snapshot().Write(os.Stderr, *c.metrics); err != nil {
		fmt.Fprintf(os.Stderr, "# metrics dump failed: %v\n", err)
	}
}

// startPprof begins CPU profiling when -pprof was given. The returned stop
// function is safe to defer unconditionally.
func (c *commonFlags) startPprof() (func(), error) {
	if *c.pprofTo == "" {
		return func() {}, nil
	}
	f, err := os.Create(*c.pprofTo)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	path := *c.pprofTo
	return func() {
		pprof.StopCPUProfile()
		f.Close()
		fmt.Fprintf(os.Stderr, "# cpu profile written to %s\n", path)
	}, nil
}

// instrument starts the CPU profile and returns a stop function that ends
// the profile and dumps the metrics registry; call it right after flag
// parsing and defer the returned function.
func (c *commonFlags) instrument() (func(), error) {
	switch *c.metrics {
	case "", "text", "json", "prom", "prometheus":
	default:
		return nil, fmt.Errorf("-metrics=%q: want text, json, or prom", *c.metrics)
	}
	m, ok := lp.ParseMethod(*c.lpMeth)
	if !ok {
		return nil, fmt.Errorf("-lp=%q: want dense, revised, or auto", *c.lpMeth)
	}
	te.SetLPMethod(m)
	stopProf, err := c.startPprof()
	if err != nil {
		return nil, err
	}
	return func() {
		stopProf()
		c.dumpMetrics()
	}, nil
}

// parseWidths parses a comma-separated list of positive layer widths.
func parseWidths(s string) ([]int, error) {
	var widths []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("%q: want comma-separated positive widths", s)
		}
		widths = append(widths, w)
	}
	if len(widths) == 0 {
		return nil, fmt.Errorf("%q: no widths", s)
	}
	return widths, nil
}

// surrogateFlags bundles the -surrogate* flags shared by attack, harden and
// compare: once the online DNN surrogate earns trust the opaque routing+MLU
// stage's probe sweep is restricted to the coordinates that matter — the
// prober's certified support when it can certify one, the surrogate's
// top-ranked coordinates otherwise — with full sparse-FD probing as warmup
// and fallback. Flag defaults mirror core.DefaultSurrogateGradConfig.
type surrogateFlags struct {
	on     *bool
	hidden *string
	warmup *int
	verify *int
}

func addSurrogateFlags(fs *flag.FlagSet) *surrogateFlags {
	return &surrogateFlags{
		on:     fs.Bool("surrogate", false, "restrict the opaque routing+MLU stage's probe sweep once the online DNN surrogate earns trust: only certified-support or top-ranked coordinates are probed (implies the gray-box pipeline; falls back to full sparse-FD probing whenever verification fails)"),
		hidden: fs.String("surrogate-hidden", "128", "comma-separated hidden layer widths of the surrogate MLP"),
		warmup: fs.Int("surrogate-warmup", 16, "true observations before the surrogate may start earning trust"),
		verify: fs.Int("surrogate-verify", 12, "consecutive non-improving true evaluations that demote a trusted surrogate back to FD probing"),
	}
}

// config materializes the flag values into a SurrogateGradConfig.
func (sf *surrogateFlags) config(seed uint64, fdStep float64) (core.SurrogateGradConfig, error) {
	cfg := core.DefaultSurrogateGradConfig(seed)
	if fdStep > 0 {
		cfg.FDStep = fdStep
	}
	cfg.Surrogate.Warmup = *sf.warmup
	cfg.VerifyWindow = *sf.verify
	var hidden []int
	for _, part := range strings.Split(*sf.hidden, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 1 {
			return cfg, fmt.Errorf("-surrogate-hidden=%q: want comma-separated positive widths", *sf.hidden)
		}
		hidden = append(hidden, w)
	}
	if len(hidden) > 0 {
		cfg.Surrogate.Hidden = hidden
	}
	return cfg, nil
}

// report prints the estimator's trust/savings counters after a run.
func reportSurrogate(est *core.SurrogateEstimator) {
	st := est.Stats()
	fmt.Printf("surrogate: %d true evals, %d saved; vjps %d guided / %d full-fd; verify %d accept / %d reject; %d promotions, %d fallbacks; trusted=%v\n",
		st.TrueEvals, st.EvalsSaved, st.SurrogateVJPs, st.FDVJPs,
		st.VerifyAccepts, st.VerifyRejects, st.Promotions, st.Fallbacks, st.Trusted)
}

// searchCtx returns the context a gradient search runs under: Background
// when no -timeout was given, a deadline-bearing child otherwise. The
// deadline propagates all the way down to the LP solves, so an expiring
// search still returns a well-formed best-so-far result.
func (c *commonFlags) searchCtx() (context.Context, context.CancelFunc) {
	if *c.timeout > 0 {
		return context.WithTimeout(context.Background(), *c.timeout)
	}
	return context.Background(), func() {}
}

// reportStop prints why a search stopped when the reason is worth the
// operator's attention (deadline, cancellation, contained faults).
func reportStop(res *core.SearchResult) {
	switch res.StopReason {
	case core.StopDeadline:
		fmt.Println("search stopped at -timeout; result above is best-so-far")
	case core.StopCancelled:
		fmt.Println("search cancelled; result above is best-so-far")
	case core.StopFaulted:
		fmt.Println("search stopped: every restart faulted")
	}
	if res.FaultCount > 0 {
		fmt.Printf("%d restart fault(s) contained and retired:\n", res.FaultCount)
		for _, f := range res.Faults {
			fmt.Printf("  %v\n", f)
		}
	}
}

func (c *commonFlags) setupFromCheckpoint() (*experiments.Setup, bool, error) {
	if *c.setup == "" {
		return nil, false, nil
	}
	f, err := os.Open(*c.setup)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	defer f.Close()
	s, err := experiments.LoadSetup(f)
	if err != nil {
		// An existing-but-unreadable checkpoint is an error, not a cue to
		// retrain: falling through would overwrite the file the user asked
		// us to load.
		return nil, false, fmt.Errorf("unreadable checkpoint %s: %w", *c.setup, err)
	}
	fmt.Fprintf(os.Stderr, "# loaded setup checkpoint %s (training skipped)\n", *c.setup)
	return s, true, nil
}

func (c *commonFlags) setupFn() (*experiments.Setup, error) {
	s, ok, err := c.setupFromCheckpoint()
	if err != nil {
		return nil, err
	}
	if ok {
		return s, nil
	}
	v := dote.Curr
	if *c.variant == "hist" {
		v = dote.Hist
	} else if *c.variant != "curr" {
		return nil, fmt.Errorf("unknown variant %q", *c.variant)
	}
	opts := experiments.DefaultSetup(v)
	if *c.quick {
		opts = experiments.QuickSetup(v)
	}
	if *c.topology != "" {
		opts.Topology = *c.topology
	}
	if *c.hidden != "" {
		widths, err := parseWidths(*c.hidden)
		if err != nil {
			return nil, fmt.Errorf("-hidden: %w", err)
		}
		opts.Hidden = widths
	}
	opts.Seed = *c.seed
	opts.Obs = c.registry()
	if *c.verbose {
		opts.Verbose = func(s string) { fmt.Fprintln(os.Stderr, "# "+s) }
	}
	s, err = experiments.Prepare(opts)
	if err != nil {
		return nil, err
	}
	if *c.setup != "" {
		f, err := os.Create(*c.setup)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := experiments.SaveSetup(f, s); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "# setup checkpoint written to %s\n", *c.setup)
	}
	// If a weights file exists, it overrides the freshly trained weights so
	// attacks hit exactly the trained model from a prior `train` run.
	if *c.weights != "" {
		if f, err := os.Open(*c.weights); err == nil {
			defer f.Close()
			if err := nn.LoadParams(f, s.Model.Net); err != nil {
				return nil, fmt.Errorf("loading %s: %w", *c.weights, err)
			}
			fmt.Fprintf(os.Stderr, "# loaded weights from %s\n", *c.weights)
		}
	}
	return s, nil
}

func cmdTrain(args []string) error {
	c := newCommon("train")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	stop, err := c.instrument()
	if err != nil {
		return err
	}
	defer stop()
	s, err := c.setupFn()
	if err != nil {
		return err
	}
	stats, err := dote.EvaluateObs(context.Background(), s.Model, s.TestEx, c.registry())
	if err != nil {
		return err
	}
	fmt.Printf("%s trained: test mean ratio %.3f, max %.3f, p95 %.3f (n=%d)\n",
		s.Model.Cfg.Variant, stats.MeanRatio, stats.MaxRatio, stats.P95Ratio, stats.N)
	if *c.weights != "" {
		f, err := os.Create(*c.weights)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := nn.SaveParams(f, s.Model.Net); err != nil {
			return err
		}
		fmt.Printf("weights saved to %s\n", *c.weights)
	}
	return nil
}

func cmdAttack(args []string) error {
	c := newCommon("attack")
	iters := c.fs.Int("iters", 400, "outer GDA iterations")
	restarts := c.fs.Int("restarts", 4, "random restarts")
	alphaD := c.fs.Float64("alpha-d", 0.01, "demand step size")
	alphaF := c.fs.Float64("alpha-f", 0.01, "split step size")
	alphaL := c.fs.Float64("alpha-l", 0.01, "multiplier step size")
	innerT := c.fs.Int("T", 1, "inner ascent steps")
	jsonOut := c.fs.String("json", "", "write the full result (including the adversarial input) to this file")
	opaque := c.fs.Bool("opaque", false, "attack the gray-box pipeline (fused routing+MLU stage, FD gradients) instead of the white-box chain-rule one")
	fdStep := c.fs.Float64("fd-step", 1e-4, "finite-difference probe step for -opaque")
	sparse := c.fs.Bool("sparse", true, "with -opaque: drive FD probes through the incremental sparse evaluators (false forces dense full-vector probing)")
	sparseRefresh := c.fs.Int("sparse-refresh", 0, "with -opaque: full-recompute interval of the incremental evaluators (0 = library default)")
	evalCacheSize := c.fs.Int("eval-cache", 0, "memoize true-ratio scoring in a cache of this many entries (0 = off; -surrogate defaults it on)")
	evalCacheQuant := c.fs.Float64("eval-cache-quant", 0, "demand quantization step for -eval-cache keys (0 = 1e-9)")
	sf := addSurrogateFlags(c.fs)
	surrogateDump := c.fs.String("surrogate-dump", "", "with -surrogate: write the trained surrogate checkpoint to this file (pairs with the -json result)")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	stop, err := c.instrument()
	if err != nil {
		return err
	}
	defer stop()
	s, err := c.setupFn()
	if err != nil {
		return err
	}
	var est *core.SurrogateEstimator
	switch {
	case *sf.on:
		scfg, err := sf.config(*c.seed+900, *fdStep)
		if err != nil {
			return err
		}
		s.Model.SparseRefresh = *sparseRefresh
		s.Target.Pipeline, est = s.Model.SurrogateRoutingPipeline(scfg)
		if *evalCacheSize == 0 {
			// The step-level trust signal rides the cache's observation
			// hook, so surrogate runs default the memo cache on.
			*evalCacheSize = 1 << 14
		}
	case *opaque:
		s.Model.SparseRefresh = *sparseRefresh
		if *sparse {
			s.Target.Pipeline = s.Model.OpaqueRoutingPipeline().Grayboxed(*fdStep)
		} else {
			s.Target.Pipeline = s.Model.OpaqueRoutingPipelineDense().Grayboxed(*fdStep)
		}
	}
	cfg := core.DefaultGradientConfig()
	cfg.Iters = *iters
	cfg.Restarts = *restarts
	cfg.AlphaD, cfg.AlphaF, cfg.AlphaL = *alphaD, *alphaF, *alphaL
	cfg.T = *innerT
	cfg.Seed = *c.seed + 400
	cfg.Obs = c.registry()
	if *evalCacheSize > 0 {
		cfg.EvalCache = core.NewEvalCache(*evalCacheSize, *evalCacheQuant)
	}
	ctx, cancel := c.searchCtx()
	defer cancel()
	res, err := core.GradientSearchContext(ctx, s.Target, cfg)
	if err != nil {
		return err
	}
	fmt.Println(res)
	reportStop(res)
	if est != nil {
		reportSurrogate(est)
		if *surrogateDump != "" {
			f, err := os.Create(*surrogateDump)
			if err != nil {
				return err
			}
			if err := est.SaveCheckpoint(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("surrogate checkpoint written to %s\n", *surrogateDump)
		}
	}
	if res.Found {
		d := s.Target.Demand(res.BestX)
		nz := 0
		for _, v := range d {
			if v > 0.01*s.Target.MaxDemand {
				nz++
			}
		}
		fmt.Printf("adversarial demand: %d/%d pairs carry >1%% of avg capacity (Figure 5 shape)\n",
			nz, len(d))
		exp, err := s.Model.Explain(res.BestX)
		if err != nil {
			return err
		}
		fmt.Print(exp)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("result written to %s\n", *jsonOut)
	}
	return nil
}

func cmdCompare(args []string) error {
	c := newCommon("compare")
	randomEvals := c.fs.Int("random-evals", 400, "random-search evaluation budget")
	wbTime := c.fs.Duration("whitebox-time", 60*time.Second, "white-box time budget")
	sf := addSurrogateFlags(c.fs)
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	stop, err := c.instrument()
	if err != nil {
		return err
	}
	defer stop()
	s, err := c.setupFn()
	if err != nil {
		return err
	}
	budgets := experiments.DefaultBudgets()
	budgets.RandomEvals = *randomEvals
	budgets.WhiteboxTime = *wbTime
	budgets.Gradient.Obs = c.registry()
	if *c.quick {
		budgets.WhiteboxNodes = 30
		budgets.Gradient.Iters = 150
		budgets.Gradient.Restarts = 2
	}
	var est *core.SurrogateEstimator
	if *sf.on {
		scfg, err := sf.config(*c.seed+900, 0)
		if err != nil {
			return err
		}
		s.Target.Pipeline, est = s.Model.SurrogateRoutingPipeline(scfg)
		budgets.Gradient.EvalCache = core.NewEvalCache(1<<14, 0)
	}
	rows, err := experiments.RunComparison(s, budgets)
	if err != nil {
		return err
	}
	if est != nil {
		reportSurrogate(est)
	}
	fmt.Printf("%-28s %-18s %-12s %s\n", "Method", "Discovered ratio", "Runtime", "Notes")
	for _, r := range rows {
		rt := "-"
		if r.Runtime > 0 {
			rt = r.Runtime.Round(time.Millisecond).String()
		}
		note := r.Note
		if r.Telemetry != "" {
			note += " [" + r.Telemetry + "]"
		}
		fmt.Printf("%-28s %-18s %-12s %s\n", r.Method, r.FormatRatio(), rt, note)
	}
	return nil
}

func cmdSensitivity(args []string) error {
	c := newCommon("sensitivity")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	stop, err := c.instrument()
	if err != nil {
		return err
	}
	defer stop()
	s, err := c.setupFn()
	if err != nil {
		return err
	}
	base := core.DefaultGradientConfig()
	base.Obs = c.registry()
	if *c.quick {
		base.Iters = 150
		base.Restarts = 2
	}
	rows, err := experiments.RunSensitivity(s, []float64{0.01, 0.005, 0.05}, base)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-16s %s\n", "alpha_L", "ratio", "runtime")
	for _, r := range rows {
		fmt.Printf("%-10g %-16.2f %v\n", r.AlphaL, r.Ratio, r.Runtime.Round(time.Millisecond))
	}
	return nil
}

func cmdCorpus(args []string) error {
	c := newCommon("corpus")
	epochs := c.fs.Int("epochs", 80, "GAN training epochs")
	size := c.fs.Int("size", 64, "corpus size")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	stop, err := c.instrument()
	if err != nil {
		return err
	}
	defer stop()
	s, err := c.setupFn()
	if err != nil {
		return err
	}
	if reg := c.registry(); reg != nil {
		s.Target.Pipeline.Instrument(reg)
		defer s.Target.Pipeline.Instrument(nil)
	}
	real := make([][]float64, 0, len(s.TrainEx))
	for _, ex := range s.TrainEx {
		real = append(real, s.Model.JoinInput(ex.History, ex.Next))
	}
	cfg := gan.DefaultConfig()
	cfg.Epochs = *epochs
	cfg.CorpusSize = *size
	cfg.Seed = *c.seed
	corpus, err := gan.Train(s.Target, real, cfg)
	if err != nil {
		return err
	}
	_, best := corpus.Best()
	fmt.Printf("corpus of %d inputs: mean ratio %.2f, p90 %.2f, best %.2f\n",
		len(corpus.Inputs), corpus.MeanRatio(), corpus.P90Ratio(), best)
	return nil
}

func cmdHarden(args []string) error {
	c := newCommon("harden")
	advCount := c.fs.Int("adv", 3, "number of adversarial inputs to mine")
	sf := addSurrogateFlags(c.fs)
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	stop, err := c.instrument()
	if err != nil {
		return err
	}
	defer stop()
	s, err := c.setupFn()
	if err != nil {
		return err
	}
	// With -surrogate the mining searches share one estimator (and one memo
	// cache): the surrogate keeps what it learned about the routing stage
	// across runs, so later mining rounds start warm.
	var est *core.SurrogateEstimator
	var cache *core.EvalCache
	if *sf.on {
		scfg, err := sf.config(*c.seed+900, 0)
		if err != nil {
			return err
		}
		s.Target.Pipeline, est = s.Model.SurrogateRoutingPipeline(scfg)
		cache = core.NewEvalCache(1<<14, 0)
	}
	// Mine adversarial inputs with independent seeds.
	var inputs [][]float64
	for i := 0; i < *advCount; i++ {
		cfg := core.DefaultGradientConfig()
		if *c.quick {
			cfg.Iters = 150
			cfg.Restarts = 2
		}
		cfg.Seed = *c.seed + uint64(1000+i)
		cfg.Obs = c.registry()
		cfg.EvalCache = cache
		ctx, cancel := c.searchCtx()
		res, err := core.GradientSearchContext(ctx, s.Target, cfg)
		cancel()
		if err != nil {
			return err
		}
		if res.Found {
			inputs = append(inputs, res.BestX)
		}
		if res.StopReason == core.StopDeadline {
			fmt.Fprintf(os.Stderr, "# adversarial mining run %d hit -timeout; using its best-so-far\n", i)
		}
	}
	if est != nil {
		reportSurrogate(est)
	}
	if len(inputs) == 0 {
		// Fall back to random search so hardening has something to chew on.
		res, err := search.Random(s.Target, search.Budget{MaxEvals: 200}, *c.seed)
		if err != nil {
			return err
		}
		if res.Found {
			inputs = append(inputs, res.BestX)
		}
	}
	topts := dote.DefaultTrainOptions()
	if *c.quick {
		topts.Epochs = 10
	}
	topts.Obs = c.registry()
	out, err := robust.Harden(s.Model, s.TrainEx, s.TestEx, inputs, 10, topts)
	if err != nil {
		return err
	}
	fmt.Printf("adversarial worst ratio: %.2f -> %.2f\n", out.BeforeAdv, out.AfterAdv)
	fmt.Printf("test mean ratio:         %.3f -> %.3f\n", out.BeforeTest.MeanRatio, out.AfterTest.MeanRatio)
	return nil
}

// cmdEvaluate scores a trained model on externally supplied traffic
// matrices (the text format of cmd/tegen and traffic.WriteSequence) — the
// entry point for evaluating against REAL traces when available.
func cmdEvaluate(args []string) error {
	c := newCommon("evaluate")
	tmsPath := c.fs.String("tms", "", "traffic matrix file (required; one epoch per line)")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	if *tmsPath == "" {
		return fmt.Errorf("-tms is required")
	}
	stop, err := c.instrument()
	if err != nil {
		return err
	}
	defer stop()
	s, err := c.setupFn()
	if err != nil {
		return err
	}
	f, err := os.Open(*tmsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	seq, err := traffic.ParseSequence(f, s.Model.NumPairs())
	if err != nil {
		return err
	}
	var ex []traffic.Example
	if s.Model.Cfg.Variant == dote.Curr {
		ex = traffic.CurrWindows(seq)
	} else {
		if len(seq) <= s.Model.Cfg.HistLen {
			return fmt.Errorf("need more than %d epochs for %s", s.Model.Cfg.HistLen, s.Model.Cfg.Variant)
		}
		ex = traffic.Windows(seq, s.Model.Cfg.HistLen)
	}
	stats, err := dote.EvaluateObs(context.Background(), s.Model, ex, c.registry())
	if err != nil {
		return err
	}
	fmt.Printf("%s on %d supplied epochs: mean ratio %.3f, p95 %.3f, max %.3f\n",
		s.Model.Cfg.Variant, stats.N, stats.MeanRatio, stats.P95Ratio, stats.MaxRatio)
	return nil
}

// cmdSimulate replays a previously saved attack result (-result file from
// `attack -json`) through the fluid simulator: a stretch of normal traffic
// with the adversarial demand injected mid-sequence, comparing the learned
// policy against the oracle on congestion, loss and delay.
func cmdSimulate(args []string) error {
	c := newCommon("simulate")
	resultPath := c.fs.String("result", "", "JSON result from `attack -json` (required)")
	epochs := c.fs.Int("epochs", 12, "length of the simulated sequence")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	if *resultPath == "" {
		return fmt.Errorf("-result is required")
	}
	stop, err := c.instrument()
	if err != nil {
		return err
	}
	defer stop()
	f, err := os.Open(*resultPath)
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := core.ReadResultJSON(f)
	if err != nil {
		return err
	}
	if !res.Found || len(res.BestX) == 0 {
		return fmt.Errorf("result contains no adversarial input")
	}
	s, err := c.setupFn()
	if err != nil {
		return err
	}
	if len(res.BestX) != s.Target.InputDim {
		return fmt.Errorf("result input dim %d does not match the %s setup (%d); pass the same -variant/-quick flags used for the attack",
			len(res.BestX), s.Model.Cfg.Variant, s.Target.InputDim)
	}
	day := traffic.Sequence(traffic.NewGravity(s.PS, 0.3, rng.New(*c.seed+42)), *epochs)
	day[*epochs/2] = s.Target.Demand(res.BestX)

	model := s.Model
	dotePolicy := sim.HistoryPolicy(model.Cfg.Variant.String(), model.Cfg.HistLen,
		model.NumPairs(), model.Cfg.Variant == dote.Curr, model.Splits)
	reports, err := sim.Compare(s.PS, []sim.Policy{dotePolicy, &sim.OraclePolicy{PS: s.PS}}, day)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %-10s %-12s %s\n", "policy", "max MLU", "loss frac", "mean delay")
	for _, r := range reports {
		if err := r.Sanity(); err != nil {
			return err
		}
		fmt.Printf("%-16s %-10.2f %-12.4f %.2f\n", r.Policy, r.MaxMLU(), r.TotalLossFraction(), r.MeanDelay())
	}
	return nil
}

// cmdVersus compares DOTE-Hist against a Teal-like DOTE-Curr (§6,
// "Comparing to other learning-enabled systems"): the search maximizes
// MLU_Hist(d) / MLU_Curr(d) over joint inputs.
func cmdVersus(args []string) error {
	c := newCommon("versus")
	iters := c.fs.Int("iters", 300, "outer GDA iterations")
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	stop, err := c.instrument()
	if err != nil {
		return err
	}
	defer stop()
	*c.variant = "hist"
	s, err := c.setupFn()
	if err != nil {
		return err
	}
	// Train the Teal-like comparator on the same traffic.
	optsB := experiments.DefaultSetup(dote.Curr)
	if *c.quick {
		optsB = experiments.QuickSetup(dote.Curr)
	}
	optsB.Seed = *c.seed
	sb, err := experiments.Prepare(optsB)
	if err != nil {
		return err
	}
	// Adapt the Curr pipeline to the Hist input layout: it consumes only
	// the demand slice.
	adapter := &core.SliceComponent{From: s.Model.HistoryDim(), To: s.Model.InputDim()}
	currOnHistLayout := sb.Model.Pipeline().PrependStage(adapter)

	rt := core.NewRelativeTarget(s.Model.Pipeline(), currOnHistLayout, s.Target)
	cfg := core.DefaultGradientConfig()
	cfg.Iters = *iters
	cfg.Seed = *c.seed + 600
	cfg.Obs = c.registry()
	res, err := core.RelativeGradientSearch(rt, cfg)
	if err != nil {
		return err
	}
	if !res.Found {
		fmt.Println("no input found where DOTE-Hist is worse than the Teal-like baseline")
		return nil
	}
	fmt.Printf("found input where DOTE-Hist's MLU is %.2fx the Teal-like model's\n", res.BestRatio)
	fmt.Printf("  MLU(Hist) = %.3f, MLU(Curr) = %.3f, time to best %v\n",
		res.BestSysMLU, res.BestOptMLU, res.TimeToBest.Round(time.Millisecond))
	return nil
}
