// Command tegen generates synthetic traffic-matrix sequences for a
// topology and writes them as text (one epoch per line, demands in
// src-major pair order), plus an optional summary.
//
// Usage:
//
//	tegen -topology abilene -model gravity -epochs 100 -seed 1 > tms.txt
//
// Large reproducible random topologies (benchmark inputs for the sparse
// revised-simplex LP engine) come from -topology waxman|prefattach with
// -nodes/-degree; -writetopo saves the generated graph alongside the
// matrices so a run can be replayed exactly:
//
//	tegen -topology waxman -nodes 120 -degree 4 -seed 7 \
//	      -model sparse -epochs 20 -writetopo topo.txt > tms.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/te"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	topo := flag.String("topology", "abilene", "topology: abilene, b4, geant, triangle, waxman, prefattach")
	model := flag.String("model", "gravity", "traffic model: gravity, uniform, bimodal, sparse")
	epochs := flag.Int("epochs", 100, "number of epochs to generate")
	seed := flag.Uint64("seed", 1, "generator seed (topology and traffic)")
	k := flag.Int("k", 4, "paths per pair (affects summary only)")
	nodes := flag.Int("nodes", 100, "node count for waxman/prefattach topologies")
	degree := flag.Float64("degree", 4, "target average degree for waxman/prefattach")
	minCap := flag.Float64("mincap", 5, "minimum link capacity for waxman/prefattach")
	maxCap := flag.Float64("maxcap", 10, "maximum link capacity for waxman/prefattach")
	writeTopo := flag.String("writetopo", "", "write the (generated) topology to this file")
	summary := flag.Bool("summary", false, "print per-epoch optimal MLU summary to stderr")
	flag.Parse()

	r := rng.New(*seed)
	var g *topology.Graph
	switch *topo {
	case "abilene":
		g = topology.Abilene()
	case "b4":
		g = topology.B4()
	case "geant":
		g = topology.Geant()
	case "triangle":
		g = topology.Triangle()
	case "waxman":
		// Split keeps topology and traffic streams independent: the same
		// -seed regenerates the same graph regardless of -model/-epochs.
		g = topology.Waxman(*nodes, *degree, *minCap, *maxCap, r.Split())
	case "prefattach":
		g = topology.PrefAttach(*nodes, *degree, *minCap, *maxCap, r.Split())
	default:
		fmt.Fprintf(os.Stderr, "tegen: unknown topology %q\n", *topo)
		os.Exit(1)
	}
	if *writeTopo != "" {
		f, err := os.Create(*writeTopo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tegen: %v\n", err)
			os.Exit(1)
		}
		if _, err := g.WriteTo(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tegen: %v\n", err)
			os.Exit(1)
		}
	}
	ps := paths.NewPathSet(g, *k)

	var gen traffic.Generator
	switch *model {
	case "gravity":
		gen = traffic.NewGravity(ps, 0.3, r)
	case "uniform":
		gen = traffic.NewUniform(ps, g.AvgLinkCapacity(), r)
	case "bimodal":
		gen = traffic.NewBimodal(ps, 0.1, r)
	case "sparse":
		gen = traffic.NewSparse(ps, 5, g.AvgLinkCapacity()/2, r)
	default:
		fmt.Fprintf(os.Stderr, "tegen: unknown model %q\n", *model)
		os.Exit(1)
	}

	seq := traffic.Sequence(gen, *epochs)
	if err := traffic.WriteSequence(os.Stdout, seq); err != nil {
		fmt.Fprintf(os.Stderr, "tegen: %v\n", err)
		os.Exit(1)
	}
	if *summary {
		for e, tm := range seq {
			opt, _, err := te.OptimalMLU(ps, tm)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tegen: epoch %d: %v\n", e, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "epoch %3d: total %.2f max %.2f optMLU %.3f\n",
				e, tm.Total(), tm.Max(), opt)
		}
	}
}
