// Command tegen generates synthetic traffic-matrix sequences for a
// topology and writes them as text (one epoch per line, demands in
// src-major pair order), plus an optional summary.
//
// Usage:
//
//	tegen -topology abilene -model gravity -epochs 100 -seed 1 > tms.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/te"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	topo := flag.String("topology", "abilene", "topology: abilene, b4, triangle")
	model := flag.String("model", "gravity", "traffic model: gravity, uniform, bimodal, sparse")
	epochs := flag.Int("epochs", 100, "number of epochs to generate")
	seed := flag.Uint64("seed", 1, "generator seed")
	k := flag.Int("k", 4, "paths per pair (affects summary only)")
	summary := flag.Bool("summary", false, "print per-epoch optimal MLU summary to stderr")
	flag.Parse()

	var g *topology.Graph
	switch *topo {
	case "abilene":
		g = topology.Abilene()
	case "b4":
		g = topology.B4()
	case "triangle":
		g = topology.Triangle()
	default:
		fmt.Fprintf(os.Stderr, "tegen: unknown topology %q\n", *topo)
		os.Exit(1)
	}
	ps := paths.NewPathSet(g, *k)
	r := rng.New(*seed)

	var gen traffic.Generator
	switch *model {
	case "gravity":
		gen = traffic.NewGravity(ps, 0.3, r)
	case "uniform":
		gen = traffic.NewUniform(ps, g.AvgLinkCapacity(), r)
	case "bimodal":
		gen = traffic.NewBimodal(ps, 0.1, r)
	case "sparse":
		gen = traffic.NewSparse(ps, 5, g.AvgLinkCapacity()/2, r)
	default:
		fmt.Fprintf(os.Stderr, "tegen: unknown model %q\n", *model)
		os.Exit(1)
	}

	seq := traffic.Sequence(gen, *epochs)
	if err := traffic.WriteSequence(os.Stdout, seq); err != nil {
		fmt.Fprintf(os.Stderr, "tegen: %v\n", err)
		os.Exit(1)
	}
	if *summary {
		for e, tm := range seq {
			opt, _, err := te.OptimalMLU(ps, tm)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tegen: epoch %d: %v\n", e, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "epoch %3d: total %.2f max %.2f optMLU %.3f\n",
				e, tm.Total(), tm.Max(), opt)
		}
	}
}
