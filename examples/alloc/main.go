// alloc is the runnable self-check for the second case study: gray-box
// analysis of an ML-augmented VM allocator (internal/alloc). It trains the
// scorer at a fixed seed, scores the nominal average request mix, then
// turns the SAME shared analyzer (core.GradientSearch over the staged
// pipeline, packing-MILP ratio oracle via RatioOverride, EvalCache
// memoization) loose on the request-mix box and asserts it finds a mix
// whose packing ratio is strictly worse than the average mix's —
// deterministically, with no alloc-specific search loop.
//
//	go run ./examples/alloc
//
// Exits non-zero if the self-check fails, so CI can gate on it.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/alloc"
	"repro/internal/core"
)

func main() {
	cfg := alloc.QuickConfig()
	sys, err := alloc.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VM allocator: %d types x %d hosts x %d resources, box [0, %g]\n",
		sys.T, sys.H, sys.R, cfg.MaxCount)
	sys.Train(func(line string) { fmt.Println("  " + line) })

	avg, err := sys.Explain(sys.AverageMix())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("average mix %v: ratio %.4f (sys %.4f / opt %.4f), fragmentation %.3f, milp %s in %d nodes (gap %.2g)\n",
		avg.Counts, avg.Ratio, avg.SysUtil, avg.OptUtil, avg.Fragmentation, avg.MILPStatus, avg.MILPNodes, avg.Gap)

	target := sys.Target(alloc.PipelineOptions{})
	gcfg := core.DefaultGradientConfig()
	gcfg.Iters = 80
	gcfg.Restarts = 6
	gcfg.EvalEvery = 2
	gcfg.AlphaD = 0.5
	gcfg.EvalCache = core.NewEvalCache(4096, 1.0)
	res, err := core.GradientSearch(target, gcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	if !res.Found {
		fmt.Println("SELF-CHECK FAILED: search found no scored mix at all")
		os.Exit(1)
	}
	adv, err := sys.Explain(res.BestX)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adversarial mix %v: ratio %.4f (sys %.4f / opt %.4f), fragmentation %.3f, milp %s in %d nodes (gap %.2g)\n",
		adv.Counts, adv.Ratio, adv.SysUtil, adv.OptUtil, adv.Fragmentation, adv.MILPStatus, adv.MILPNodes, adv.Gap)

	if !(adv.Ratio > avg.Ratio) {
		fmt.Printf("SELF-CHECK FAILED: adversarial ratio %.4f not strictly worse than average-mix ratio %.4f\n",
			adv.Ratio, avg.Ratio)
		os.Exit(1)
	}
	fmt.Printf("SELF-CHECK OK: adversarial ratio %.4f > average-mix ratio %.4f (+%.1f%%)\n",
		adv.Ratio, avg.Ratio, 100*(adv.Ratio/avg.Ratio-1))
	fmt.Println("\nsame analyzer, second domain: scorer + softmax placement gray-boxed,")
	fmt.Println("packing MILP kept fully opaque behind the ratio oracle.")
}
