// Example waxman100 solves the checked-in 100-node Waxman benchmark inputs
// (topology.txt + tms.txt, grown by cmd/tegen) with the sparse revised-simplex
// engine: the MLU LP here has ~10,300 rows and ~40,000 columns, a size where
// the dense tableau would need gigabytes. The first epoch is a cold solve;
// the rest warm-start from the retained factorized basis.
//
// Regenerate the inputs with:
//
//	go run ./cmd/tegen -topology waxman -nodes 100 -degree 4 -seed 7 \
//	    -model gravity -epochs 3 -writetopo examples/waxman100/topology.txt \
//	    > examples/waxman100/tms.txt
//
// Run from the repository root:
//
//	go run ./examples/waxman100
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/lp"
	"repro/internal/paths"
	"repro/internal/te"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	dir := flag.String("dir", "examples/waxman100", "directory holding topology.txt and tms.txt")
	k := flag.Int("k", 4, "paths per pair")
	flag.Parse()

	tf, err := os.Open(filepath.Join(*dir, "topology.txt"))
	check(err)
	g, err := topology.Parse(tf)
	tf.Close()
	check(err)

	ps := paths.NewPathSet(g, *k)
	mf, err := os.Open(filepath.Join(*dir, "tms.txt"))
	check(err)
	seq, err := traffic.ParseSequence(mf, ps.NumPairs())
	mf.Close()
	check(err)

	fmt.Printf("waxman100: %d nodes, %d directed edges, %d pairs, K=%d\n",
		g.NumNodes(), g.NumEdges(), ps.NumPairs(), *k)

	s := te.NewMLUSolver(ps)
	s.SetMethod(lp.MethodRevised)
	for e, tm := range seq {
		t0 := time.Now()
		mlu, splits, err := s.Solve(tm)
		check(err)
		// Replaying the splits on the network confirms the LP objective is a
		// routing the topology actually achieves.
		achieved, _ := te.MLU(ps, tm, splits)
		fmt.Printf("epoch %d: MLU %.6f (splits achieve %.6f) in %v\n",
			e, mlu, achieved, time.Since(t0).Round(time.Millisecond))
	}
	st := s.Stats()
	fmt.Printf("stats: %d solves, %d pivots (phase1 %d, phase2 %d), %d refactors, %d warm hits\n",
		st.Solves, st.Pivots, st.Phase1Pivots, st.Phase2Pivots, st.Refactors, st.WarmHits)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "waxman100:", err)
		os.Exit(1)
	}
}
