// blackbox_gp demonstrates the gray-box spectrum of §3.2/§6: attacking a
// pipeline whose routing stage is a black box. The analyzer estimates that
// stage's gradient three ways — exact chain rule (for reference), central
// finite differences, and a Gaussian-process surrogate fitted from samples —
// and runs the same gradient search with each.
//
//	go run ./examples/blackbox_gp
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/gp"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	g := topology.Triangle()
	ps := paths.NewPathSet(g, 2)
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{16}
	model := dote.New(ps, cfg)
	gen := traffic.NewGravity(ps, 0.3, rng.New(1))
	opts := dote.DefaultTrainOptions()
	opts.Epochs = 12
	if _, err := dote.Train(model, traffic.CurrWindows(traffic.Sequence(gen, 60)), opts); err != nil {
		log.Fatal(err)
	}

	// The opaque pipeline fuses routing+MLU into one non-differentiable
	// component; only its Forward is available.
	opaque := model.OpaqueRoutingPipeline()
	stages := opaque.Stages()
	blackbox := stages[len(stages)-1]

	// Option A: exact gradients (reference — in a real deployment you may
	// not have these).
	exact := model.Pipeline()

	// Option B: finite differences around the query point.
	fd := opaque.Grayboxed(1e-5)

	// Option C: a GP surrogate fitted to samples of the black box, as §6
	// proposes for components that are expensive or not even
	// approximately differentiable.
	r := rng.New(7)
	probeDim := model.TotalPaths() + model.NumPairs()
	var xs [][]float64
	for i := 0; i < 250; i++ {
		x := make([]float64, probeDim)
		// splits part: random simplex-ish; demand part: random demands
		for j := 0; j < model.TotalPaths(); j++ {
			x[j] = r.Float64()
		}
		for j := model.TotalPaths(); j < probeDim; j++ {
			x[j] = r.Float64() * g.AvgLinkCapacity()
		}
		xs = append(xs, x)
	}
	surrogate, err := gp.FitComponent("routing+mlu", blackbox.Forward, xs,
		gp.RBF{LengthScale: 40, Variance: 1}, 1e-4)
	if err != nil {
		log.Fatal(err)
	}
	gpPipe := core.NewPipeline(stages[0], stages[1], surrogate)

	for _, v := range []struct {
		name string
		p    *core.Pipeline
	}{
		{"exact chain rule", exact},
		{"finite differences", fd},
		{"gaussian-process surrogate", gpPipe},
	} {
		target := &core.AttackTarget{
			Pipeline:    model.Pipeline(), // ratio verification always uses the REAL system
			InputDim:    model.InputDim(),
			DemandStart: 0,
			DemandLen:   model.NumPairs(),
			PS:          ps,
			MaxDemand:   g.AvgLinkCapacity(),
		}
		// ...but the search direction comes from the estimator under test.
		searchTarget := *target
		searchTarget.Pipeline = v.p
		cfg := core.DefaultGradientConfig()
		cfg.Iters = 200
		cfg.Restarts = 2
		res, err := core.GradientSearch(&searchTarget, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Re-verify on the true pipeline.
		trueRatio := 0.0
		if res.Found {
			trueRatio, _, _, err = model.PerformanceRatio(res.BestX)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-28s search ratio %.2fx, verified on real system %.2fx (%d grad evals)\n",
			v.name, res.BestRatio, trueRatio, res.GradEvals)
	}
}
