// scheduler demonstrates that the gray-box analyzer is not TE-specific
// (§6, "Beyond learning-enabled systems"): here the learning-enabled system
// is a DNN-based JOB SCHEDULER that assigns job classes to heterogeneous
// servers, and the objective is the maximum server utilization. The
// analyzer needs only (1) the pipeline's component gradients and (2) a way
// to score candidates against the optimal — supplied via RatioOverride
// with a small LP.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"repro/internal/ad"
	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
)

const (
	numJobs    = 8 // job classes; input = their arrival rates
	numServers = 3
	maxRate    = 10.0
)

// server capacities (heterogeneous).
var capacities = []float64{4, 8, 12}

// optimalMaxUtil solves the fractional assignment LP — distribute each job
// class across servers to minimize the maximum utilization — via the shared
// packing baseline promoted into internal/alloc (one resource per server).
func optimalMaxUtil(rates []float64) (float64, error) {
	load := make([][]float64, numJobs)
	for j := range load {
		load[j] = []float64{rates[j]}
	}
	caps := make([][]float64, numServers)
	for m := range caps {
		caps[m] = []float64{capacities[m]}
	}
	return alloc.FractionalOptimal(load, caps)
}

func main() {
	r := rng.New(1)
	// The "learned scheduler": a small DNN mapping job rates to assignment
	// logits, trained here with a crude policy-gradient-free recipe — we
	// directly minimize the differentiable max-utilization, exactly like
	// DOTE trains against the MLU.
	net := nn.MLP("sched", []int{numJobs, 32, numJobs * numServers}, nn.ActELU, r)
	offsets := make([]int, numJobs)
	lens := make([]int, numJobs)
	for j := range offsets {
		offsets[j] = j * numServers
		lens[j] = numServers
	}
	caps := append([]float64{}, capacities...)

	// Per-server load kernels, shared by training and the analyzer VJP.
	loadsFwd := func(in [][]float64, out []float64) {
		for j := 0; j < numJobs; j++ {
			for m := 0; m < numServers; m++ {
				out[m] += in[0][j] * in[1][j*numServers+m]
			}
		}
		for m := range out {
			out[m] /= caps[m]
		}
	}
	loadsBwd := func(in [][]float64, out, gout []float64, gin [][]float64) {
		gr, gs := gin[0], gin[1]
		for j := 0; j < numJobs; j++ {
			for m := 0; m < numServers; m++ {
				if gr != nil {
					gr[j] += gout[m] / caps[m] * in[1][j*numServers+m]
				}
				if gs != nil {
					gs[j*numServers+m] += gout[m] / caps[m] * in[0][j]
				}
			}
		}
	}

	forwardUtil := func(c *nn.Ctx, rates []float64) ad.Value {
		in := c.T.ConstMat(rates, 1, numJobs)
		logits := net.Forward(c, ad.Scale(in, 1/maxRate))
		shares := ad.SegmentSoftmax(ad.Reshape(logits, numJobs*numServers, 1), offsets, lens)
		rv := c.T.Const(rates)
		loads := ad.Custom(c.T, []ad.Value{rv, shares}, numServers, 1, loadsFwd, loadsBwd)
		return ad.Max(loads)
	}

	// Train on random workloads.
	opt := nn.NewAdam(2e-3)
	for epoch := 0; epoch < 400; epoch++ {
		rates := make([]float64, numJobs)
		for i := range rates {
			rates[i] = r.Float64() * maxRate / 2
		}
		c := nn.NewCtx(true)
		loss := forwardUtil(c, rates)
		nn.ZeroGrads(net.Params())
		ad.Backward(loss)
		c.Harvest()
		opt.Step(net.Params())
	}

	// Wrap the trained scheduler as an analyzer pipeline (one component is
	// enough — the tape computes the end-to-end VJP internally).
	pipeline := core.NewPipeline(&core.DiffFunc{
		ComponentName: "learned-scheduler",
		Fn: func(x []float64) []float64 {
			c := nn.NewCtx(false)
			return []float64{forwardUtil(c, x).ScalarValue()}
		},
		VJPFn: func(x, ybar []float64) []float64 {
			c := nn.NewCtx(false)
			// Rebuild with the input as a tape variable to get d util / dx.
			in := c.T.VarMat(x, 1, numJobs)
			logits := net.Forward(c, ad.Scale(in, 1/maxRate))
			shares := ad.SegmentSoftmax(ad.Reshape(logits, numJobs*numServers, 1), offsets, lens)
			// loads need the raw rates as a differentiable value too; reuse
			// the Var through a Slice of the same tape value.
			rv := ad.Reshape(in, numJobs, 1)
			loads := ad.Custom(c.T, []ad.Value{rv, shares}, numServers, 1, loadsFwd, loadsBwd)
			util := ad.Max(loads)
			ad.BackwardVJP(util, ybar)
			return in.Grad()
		},
	})

	target := &core.AttackTarget{
		Pipeline:    pipeline,
		InputDim:    numJobs,
		DemandStart: 0,
		DemandLen:   numJobs,
		PS:          nil, // non-TE system: scoring comes from RatioOverride
		MaxDemand:   maxRate,
	}
	target.RatioOverride = func(x []float64) (float64, float64, float64, error) {
		sys := pipeline.EvalScalar(x)
		opt, err := optimalMaxUtil(x)
		if err != nil {
			return 0, 0, 0, err
		}
		if opt <= 1e-12 {
			return 1, sys, opt, nil
		}
		return sys / opt, sys, opt, nil
	}

	cfg := core.DefaultGradientConfig()
	cfg.Iters = 300
	res, err := core.GradientSearch(target, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	if res.Found {
		fmt.Printf("worst-case job mix found: %.2f\n", res.BestX)
		fmt.Printf("=> the learned scheduler's max utilization is %.2fx the optimal assignment's\n",
			res.BestRatio)
	}
	fmt.Println("\nsame analyzer, different system: only the pipeline and the")
	fmt.Println("ratio oracle changed — no TE substrate involved.")
}
