// consequences replays an adversarial demand through a fluid network
// simulator to show what the MLU gap means operationally: the paper argues
// (§1) that deploying a fragile learning-enabled TE system "can cause
// unnecessary congestion, delays, and packet drops under certain demands".
//
// The scenario: a day of normal gravity traffic, with the analyzer's
// adversarial demand injected mid-day (e.g. a fiber-cut-induced traffic
// shift). We compare the learned policy against the oracle.
//
//	go run ./examples/consequences
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/te"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	g := topology.Triangle()
	ps := paths.NewPathSet(g, 2)
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{16}
	model := dote.New(ps, cfg)
	gen := traffic.NewGravity(ps, 0.3, rng.New(1))
	opts := dote.DefaultTrainOptions()
	opts.Epochs = 12
	if _, err := dote.Train(model, traffic.CurrWindows(traffic.Sequence(gen, 60)), opts); err != nil {
		log.Fatal(err)
	}

	// Find an adversarial demand.
	target := &core.AttackTarget{
		Pipeline:    model.Pipeline(),
		InputDim:    model.InputDim(),
		DemandStart: 0,
		DemandLen:   model.NumPairs(),
		PS:          ps,
		MaxDemand:   g.AvgLinkCapacity(),
	}
	scfg := core.DefaultGradientConfig()
	scfg.Iters = 300
	res, err := core.GradientSearch(target, scfg)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		fmt.Println("no adversarial input found; nothing to replay")
		return
	}
	fmt.Printf("adversarial input found: ratio %.2fx\n\n", res.BestRatio)

	// A short "day": normal epochs with the adversarial demand injected.
	day := traffic.Sequence(traffic.NewGravity(ps, 0.3, rng.New(2)), 12)
	adv := target.Demand(res.BestX)
	day[6] = adv

	dotePolicy := &sim.FuncPolicy{
		PolicyName: "dote-curr",
		Fn: func(_ []te.TrafficMatrix, current te.TrafficMatrix) te.Splits {
			return model.Splits(current)
		},
	}
	reports, err := sim.Compare(ps, []sim.Policy{dotePolicy, &sim.OraclePolicy{PS: ps}}, day)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-10s %-12s %-14s %s\n", "policy", "max MLU", "loss frac", "mean delay", "worst epoch")
	for _, r := range reports {
		if err := r.Sanity(); err != nil {
			log.Fatal(err)
		}
		worst, worstIdx := 0.0, -1
		for i, e := range r.Epochs {
			if e.MLU > worst {
				worst, worstIdx = e.MLU, i
			}
		}
		fmt.Printf("%-16s %-10.2f %-12.4f %-14.2f epoch %d (MLU %.2f, %d congested links)\n",
			r.Policy, r.MaxMLU(), r.TotalLossFraction(), r.MeanDelay(),
			worstIdx, worst, r.Epochs[worstIdx].CongestedLinks)
	}
	fmt.Println("\nThe learned policy congests (and drops) on the adversarial epoch;")
	fmt.Println("the oracle routes the same demand cleanly — that is the deployment risk")
	fmt.Println("the analyzer exposes before it happens in production.")
}
