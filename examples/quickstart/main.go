// Quickstart: build a tiny learning-enabled TE pipeline, train it, and use
// the gray-box analyzer to find an input where it badly underperforms the
// optimal routing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	// 1. A topology and its candidate paths (K-shortest, as in the paper).
	g := topology.Triangle()
	ps := paths.NewPathSet(g, 2)

	// 2. A DOTE-style pipeline: DNN -> split ratios -> routing -> MLU.
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{16}
	model := dote.New(ps, cfg)

	// 3. Train it end to end on gravity-model traffic, exactly as the
	//    original system trains: the loss is the MLU ratio itself.
	gen := traffic.NewGravity(ps, 0.3, rng.New(1))
	examples := traffic.CurrWindows(traffic.Sequence(gen, 60))
	opts := dote.DefaultTrainOptions()
	opts.Epochs = 12
	if _, err := dote.Train(model, examples, opts); err != nil {
		log.Fatal(err)
	}
	stats, err := dote.Evaluate(model, examples[:20])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on its own (test-like) data, the model is within %.2fx of optimal\n", stats.MaxRatio)

	// 4. Point the gray-box analyzer at it. The pipeline decomposes into
	//    components whose gradients combine by the chain rule; the search
	//    is the Lagrangian gradient descent-ascent of the paper's Eq. 5.
	target := &core.AttackTarget{
		Pipeline:    model.Pipeline(),
		InputDim:    model.InputDim(),
		DemandStart: 0,
		DemandLen:   model.NumPairs(),
		PS:          ps,
		MaxDemand:   g.AvgLinkCapacity(),
	}
	scfg := core.DefaultGradientConfig()
	scfg.Iters = 300
	res, err := core.GradientSearch(target, scfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	if res.Found {
		fmt.Printf("=> the analyzer found a demand where the system is %.2fx worse than optimal\n",
			res.BestRatio)
		fmt.Printf("   adversarial demand matrix: %.1f\n", target.Demand(res.BestX))
	}
}
