// dote_abilene reproduces the shape of Table 1 on the Abilene backbone at
// laptop scale: train DOTE-Hist, then compare what four methods discover —
// the test set, random search, the MetaOpt-style white-box MILP, and the
// gray-box gradient analyzer.
//
//	go run ./examples/dote_abilene
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/dote"
	"repro/internal/experiments"
)

func main() {
	opts := experiments.QuickSetup(dote.Hist)
	opts.Verbose = func(s string) { fmt.Fprintln(os.Stderr, "# "+s) }
	fmt.Fprintln(os.Stderr, "# preparing Abilene + DOTE-Hist (this trains a model; ~1 min)")
	s, err := experiments.Prepare(opts)
	if err != nil {
		log.Fatal(err)
	}

	budgets := experiments.DefaultBudgets()
	budgets.RandomEvals = 150
	budgets.WhiteboxNodes = 20
	budgets.WhiteboxTime = 15 * time.Second
	budgets.Gradient.Iters = 200
	budgets.Gradient.Restarts = 2

	rows, err := experiments.RunComparison(s, budgets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDOTE-Hist on Abilene — who finds the worst input? (Table 1 shape)")
	fmt.Printf("%-28s %-18s %-12s %s\n", "Method", "Discovered ratio", "Runtime", "Notes")
	for _, r := range rows {
		rt := "-"
		if r.Runtime > 0 {
			rt = r.Runtime.Round(time.Millisecond).String()
		}
		fmt.Printf("%-28s %-18s %-12s %s\n", r.Method, r.FormatRatio(), rt, r.Note)
	}
	fmt.Println("\nExpected shape: gradient >> random > test set; white-box finds nothing.")
}
