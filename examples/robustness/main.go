// robustness demonstrates the §6 hardening loop: find adversarial inputs
// with the gray-box analyzer, fold them back into the training set, retrain,
// and measure both the adversarial gap and the average case.
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/robust"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	g := topology.Triangle()
	ps := paths.NewPathSet(g, 2)
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{16}
	model := dote.New(ps, cfg)
	gen := traffic.NewGravity(ps, 0.3, rng.New(1))
	trainEx := traffic.CurrWindows(traffic.Sequence(gen, 60))
	testEx := traffic.CurrWindows(traffic.Sequence(gen, 20))
	topts := dote.DefaultTrainOptions()
	topts.Epochs = 12
	if _, err := dote.Train(model, trainEx, topts); err != nil {
		log.Fatal(err)
	}

	target := &core.AttackTarget{
		Pipeline:    model.Pipeline(),
		InputDim:    model.InputDim(),
		DemandStart: 0,
		DemandLen:   model.NumPairs(),
		PS:          ps,
		MaxDemand:   g.AvgLinkCapacity(),
	}

	// Mine a few adversarial inputs with independent restarts.
	var adv [][]float64
	for i := 0; i < 3; i++ {
		scfg := core.DefaultGradientConfig()
		scfg.Iters = 200
		scfg.Restarts = 2
		scfg.Seed = uint64(100 + i)
		res, err := core.GradientSearch(target, scfg)
		if err != nil {
			log.Fatal(err)
		}
		if res.Found {
			fmt.Printf("mined adversarial input %d: ratio %.2fx\n", i+1, res.BestRatio)
			adv = append(adv, res.BestX)
		}
	}
	if len(adv) == 0 {
		fmt.Println("no adversarial inputs found; the model is already robust at this scale")
		return
	}

	hopts := dote.DefaultTrainOptions()
	hopts.Epochs = 12
	out, err := robust.Harden(model, trainEx, testEx, adv, 10, hopts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst adversarial ratio: %.2fx -> %.2fx\n", out.BeforeAdv, out.AfterAdv)
	fmt.Printf("test-set mean ratio:     %.3f  -> %.3f\n", out.BeforeTest.MeanRatio, out.AfterTest.MeanRatio)
	fmt.Println("\n(hardening should shrink the adversarial gap without destroying the average case)")
}
