// Package repro is a from-scratch Go reproduction of "End-to-End
// Performance Analysis of Learning-enabled Systems" (HotNets '24): a
// gray-box, gradient-guided adversarial-input analyzer for learning-enabled
// systems, evaluated against the DOTE learning-enabled traffic-engineering
// pipeline on the Abilene topology.
//
// The package tree:
//
//   - internal/core — the analyzer: component pipelines, chain-rule VJPs,
//     gray-box gradient estimators, Lagrangian gradient descent-ascent.
//   - internal/dote — the system under analysis (DNN → split ratios →
//     routing → MLU), with end-to-end training.
//   - internal/ad, internal/nn — reverse-mode autodiff and neural nets.
//   - internal/lp, internal/milp — simplex LP and branch-and-bound MILP
//     (optimal baselines; MetaOpt-style white-box encoding).
//   - internal/te, internal/topology, internal/paths, internal/traffic —
//     the TE substrate: topologies, K-shortest paths, routing, workloads.
//   - internal/search, internal/whitebox — black-box and white-box baselines.
//   - internal/gp, internal/gan, internal/robust — the §6 extensions.
//   - internal/experiments — every table and figure of §5 as a callable.
//
// See README.md for usage and EXPERIMENTS.md for reproduced results; the
// root-level benchmarks (bench_test.go) regenerate each table and figure.
package repro
