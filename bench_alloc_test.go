package repro

// Alloc attack micro-benchmark: the second case study's end-to-end search
// (staged gray-box pipeline over the VM allocator, packing-MILP ratio
// oracle, EvalCache memoization) at quick scale, reporting the discovered
// packing ratio like the Table 1/2 benches do. Wired into `make bench-json`
// so future PRs inherit a BENCH baseline for the allocator path.

import (
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
)

var allocBench struct {
	once sync.Once
	sys  *alloc.System
	err  error
}

// benchAllocSystem lazily builds and trains one quick-scale allocator.
func benchAllocSystem(b *testing.B) *alloc.System {
	b.Helper()
	allocBench.once.Do(func() {
		cfg := alloc.QuickConfig()
		cfg.TrainEpochs = 80
		allocBench.sys, allocBench.err = alloc.New(cfg)
		if allocBench.err == nil {
			allocBench.sys.Train(nil)
		}
	})
	if allocBench.err != nil {
		b.Fatal(allocBench.err)
	}
	return allocBench.sys
}

func benchAllocAttack(b *testing.B, sys *alloc.System) {
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 40
	cfg.Restarts = 4
	cfg.EvalEvery = 2
	cfg.AlphaD = 0.5
	best := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.EvalCache = core.NewEvalCache(1024, 1.0)
		res, err := core.GradientSearch(sys.Target(alloc.PipelineOptions{}), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("alloc attack found nothing")
		}
		if res.BestRatio > best {
			best = res.BestRatio
		}
	}
	b.ReportMetric(best, "ratio")
}

// BenchmarkAllocAttack rides the default warm-started MILP engine for the
// packing oracle (the hot path of every true-ratio evaluation).
func BenchmarkAllocAttack(b *testing.B) {
	benchAllocAttack(b, benchAllocSystem(b))
}

// BenchmarkAllocAttackColdMILP pins the legacy clone-per-node MILP engine
// under the identical attack, so the BENCH history carries the A/B of the
// warm engine's end-to-end effect on the analyzer.
func BenchmarkAllocAttackColdMILP(b *testing.B) {
	cold := *benchAllocSystem(b)
	cold.Cfg.MILPColdClone = true
	benchAllocAttack(b, &cold)
}
