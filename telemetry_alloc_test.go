package repro

// Guard for the telemetry layer's zero-cost-when-disabled contract: an
// uninstrumented pipeline (the default, and the state after
// Instrument(nil)) must run the gradient hot path with exactly the same
// number of allocations as a pipeline that never saw a registry. CI runs
// this as a separate non-gating step so a regression is loud without
// blocking unrelated work.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func TestDisabledTelemetryZeroAlloc(t *testing.T) {
	st := benchStates[dote.Curr]
	st.once.Do(func() {
		st.s, st.err = experiments.Prepare(experiments.QuickSetup(dote.Curr))
	})
	if st.err != nil {
		t.Fatal(st.err)
	}
	s := st.s
	x := make([]float64, s.Target.InputDim)
	for i := range x {
		x[i] = float64(i%7) / 7 * s.Target.MaxDemand
	}
	p := s.Target.Pipeline

	grad := func() { p.Grad(x) }
	grad() // warm the pools so both measurements see steady state

	base := testing.AllocsPerRun(200, grad)

	// Instrument and immediately disable: the pipeline must return to the
	// allocation-free fast path, not keep paying for dead handles.
	p.Instrument(obs.NewRegistry())
	p.Instrument(nil)
	disabled := testing.AllocsPerRun(200, grad)

	if disabled != base {
		t.Fatalf("disabled telemetry changed Grad allocations: %v allocs/op baseline, %v after Instrument(nil)", base, disabled)
	}
}

// TestSparseFDPathZeroAllocWhenDisabled extends the guard to the
// incremental-evaluation fast path: the gray-box FD gradient driven by
// sparse probes (no eval cache in play) must keep its uninstrumented
// allocs/op after an Instrument/Instrument(nil) round trip, and the sparse
// sweep itself must stay far below the dense path's 2n-forwards footprint.
func TestSparseFDPathZeroAllocWhenDisabled(t *testing.T) {
	st := benchStates[dote.Curr]
	st.once.Do(func() {
		st.s, st.err = experiments.Prepare(experiments.QuickSetup(dote.Curr))
	})
	if st.err != nil {
		t.Fatal(st.err)
	}
	s := st.s
	p := s.Model.OpaqueRoutingPipeline().Grayboxed(1e-4)
	x := make([]float64, s.Target.InputDim)
	for i := range x {
		x[i] = float64(i%7) / 7 * s.Target.MaxDemand
	}

	grad := func() { p.Grad(x) }
	grad() // warm the evaluator pools

	base := testing.AllocsPerRun(200, grad)

	p.Instrument(obs.NewRegistry())
	p.Instrument(nil)
	disabled := testing.AllocsPerRun(200, grad)

	if disabled != base {
		t.Fatalf("disabled telemetry changed sparse Grad allocations: %v allocs/op baseline, %v after Instrument(nil)", base, disabled)
	}
	// The sparse sweep allocates O(workers) scratch, not O(coordinates)
	// probe vectors: a generous fixed bound catches any per-probe
	// allocation sneaking back into the hot path.
	if base > 64 {
		t.Fatalf("sparse FD Grad allocates %v allocs/op; want <= 64 (per-probe allocations crept in)", base)
	}
}

// TestSurrogateDisabledGradAllocParity pins the surrogate feature's
// zero-cost-when-disabled contract: a plain sparse gray-box pipeline (no
// surrogate anywhere in its stage list) must keep the exact allocs/op it
// had before the surrogate subsystem existed, even after a surrogate
// pipeline for the same model has been built and exercised. The surrogate
// path may only cost something when a SurrogateEstimator is actually in
// the pipeline.
func TestSurrogateDisabledGradAllocParity(t *testing.T) {
	st := benchStates[dote.Curr]
	st.once.Do(func() {
		st.s, st.err = experiments.Prepare(experiments.QuickSetup(dote.Curr))
	})
	if st.err != nil {
		t.Fatal(st.err)
	}
	s := st.s
	x := make([]float64, s.Target.InputDim)
	for i := range x {
		x[i] = float64(i%7) / 7 * s.Target.MaxDemand
	}

	plain := s.Model.OpaqueRoutingPipeline().Grayboxed(1e-4)
	grad := func() { plain.Grad(x) }
	grad() // warm the evaluator pools
	base := testing.AllocsPerRun(200, grad)

	// Build and exercise a surrogate pipeline for the same model: feed it
	// observations and gradients so its learner, pools, and counters are
	// all live.
	surPipe, est := s.Model.SurrogateRoutingPipeline(core.DefaultSurrogateGradConfig(33))
	for i := 0; i < 4; i++ {
		surPipe.Forward(x)
		surPipe.Grad(x)
	}
	if est.Stats().TrueEvals == 0 {
		t.Fatal("surrogate pipeline saw no traffic")
	}

	after := testing.AllocsPerRun(200, grad)
	if after != base {
		t.Fatalf("surrogate machinery changed plain sparse Grad allocations: %v allocs/op before, %v after", base, after)
	}
}
