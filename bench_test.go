package repro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5) plus the design-choice ablations listed in DESIGN.md §5.
// Run with:
//
//	go test -bench=. -benchmem
//
// Each table/figure bench reports the discovered performance ratio as a
// custom metric ("ratio") and logs the full rows once, so the bench output
// doubles as the raw material for EXPERIMENTS.md. Benchmarks use the quick
// (laptop-scale) setup; cmd/tereport runs the full-scale configuration.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/te"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// benchState caches one trained quick-scale instance; the sync.Once closure
// is the only writer of s and err, and Do's happens-before edge makes the
// fields safe to read afterwards without extra locking.
type benchState struct {
	once sync.Once
	s    *experiments.Setup
	err  error
}

var benchStates = map[dote.Variant]*benchState{dote.Hist: {}, dote.Curr: {}}

// benchSetup lazily prepares (and caches) a trained quick-scale instance.
func benchSetup(b *testing.B, v dote.Variant) *experiments.Setup {
	b.Helper()
	st := benchStates[v]
	st.once.Do(func() {
		st.s, st.err = experiments.Prepare(experiments.QuickSetup(v))
	})
	if st.err != nil {
		b.Fatal(st.err)
	}
	return st.s
}

func benchGradientConfig(seed uint64) core.GradientConfig {
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 120
	cfg.Restarts = 2
	cfg.EvalEvery = 15
	cfg.Seed = seed
	return cfg
}

// BenchmarkTable1_DOTEHist regenerates Table 1's bottom row (and logs all
// four rows on the first iteration): the gray-box gradient search against
// DOTE-Hist on Abilene.
func BenchmarkTable1_DOTEHist(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Hist)
	logged := false
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.GradientSearch(s.Target, benchGradientConfig(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		last = res.BestRatio
		if !logged {
			logged = true
			b.Logf("Table 1 (DOTE-Hist, quick scale): gradient-based ratio %.2fx in %v",
				res.BestRatio, res.TimeToBest.Round(time.Millisecond))
		}
	}
	b.ReportMetric(last, "ratio")
}

// BenchmarkTable1_Rows regenerates the OTHER rows of Table 1: test set,
// random search and the white-box baseline.
func BenchmarkTable1_Rows(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Hist)
	b.Run("test-set", func(b *testing.B) {

		b.ReportAllocs()
		var last float64
		for i := 0; i < b.N; i++ {
			stats, err := dote.Evaluate(s.Model, s.TestEx)
			if err != nil {
				b.Fatal(err)
			}
			last = stats.MaxRatio
		}
		b.ReportMetric(last, "ratio")
	})
	b.Run("random-search", func(b *testing.B) {

		b.ReportAllocs()
		var last float64
		for i := 0; i < b.N; i++ {
			res, err := search.Random(s.Target, search.Budget{MaxEvals: 100}, uint64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			last = res.BestRatio
		}
		b.ReportMetric(last, "ratio")
	})
	b.Run("whitebox-budgeted", func(b *testing.B) {

		b.ReportAllocs()
		found := 0.0
		for i := 0; i < b.N; i++ {
			wb, err := whiteboxRow(s)
			if err != nil {
				b.Fatal(err)
			}
			if wb.Found {
				found = wb.BestRatio
			}
		}
		// Expected: 0 (no incumbent within budget) — the "—" cell.
		b.ReportMetric(found, "ratio")
	})
}

func whiteboxRow(s *experiments.Setup) (*core.SearchResult, error) {
	rows, err := experiments.RunComparison(s, experiments.ComparisonBudgets{
		RandomEvals:   1, // minimal: we only want the white-box row here
		WhiteboxNodes: 5,
		WhiteboxTime:  10 * time.Second,
		Gradient: core.GradientConfig{
			Iters: 1, T: 1, AlphaD: 0.01, AlphaF: 0.01, AlphaL: 0.01,
			LambdaInit: 1, Restarts: 1, EvalEvery: 1,
		},
	})
	if err != nil {
		return nil, err
	}
	wb := rows[2]
	return &core.SearchResult{Found: wb.Found, BestRatio: wb.Ratio}, nil
}

// BenchmarkTable2_DOTECurr regenerates Table 2: the same search against
// DOTE-Curr (which sees the current matrix, like Teal).
func BenchmarkTable2_DOTECurr(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Curr)
	logged := false
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.GradientSearch(s.Target, benchGradientConfig(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		last = res.BestRatio
		if !logged {
			logged = true
			b.Logf("Table 2 (DOTE-Curr, quick scale): gradient-based ratio %.2fx in %v",
				res.BestRatio, res.TimeToBest.Round(time.Millisecond))
		}
	}
	b.ReportMetric(last, "ratio")
}

// BenchmarkTable3_StepSensitivity regenerates Table 3: the discovered ratio
// and runtime as α_λ varies with α_d = α_f = 0.01.
func BenchmarkTable3_StepSensitivity(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Curr)
	for _, alpha := range []float64{0.01, 0.005, 0.05} {
		b.Run(fmt.Sprintf("alphaL=%g", alpha), func(b *testing.B) {

			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchGradientConfig(uint64(i + 7))
				cfg.AlphaL = alpha
				res, err := core.GradientSearch(s.Target, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.BestRatio
			}
			b.ReportMetric(last, "ratio")
		})
	}
}

// BenchmarkFigure3_RoutingMLU regenerates the Figure 3 example and measures
// the routing+MLU substrate.
func BenchmarkFigure3_RoutingMLU(b *testing.B) {
	b.ReportAllocs()
	rows, err := experiments.Figure3()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("Figure 3: %s=%g, %s=%g, %s=%g",
		rows[0].Name, rows[0].MLU, rows[1].Name, rows[1].MLU, rows[2].Name, rows[2].MLU)
	if rows[0].MLU != 1 || rows[1].MLU != 1 || rows[2].MLU != 2 {
		b.Fatal("Figure 3 MLUs deviate from the paper")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5_DemandCDF regenerates Figure 5: the CDF contrast between
// adversarial and training demands.
func BenchmarkFigure5_DemandCDF(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Curr)
	res, err := core.GradientSearch(s.Target, benchGradientConfig(5))
	if err != nil {
		b.Fatal(err)
	}
	if !res.Found {
		b.Skip("no adversarial input found at bench scale")
	}
	data := experiments.Figure5(s, res.BestX)
	b.Logf("Figure 5 thresholds:   %v", data.Thresholds)
	b.Logf("Figure 5 training CDF: %v", data.Training)
	b.Logf("Figure 5 adv CDF:      %v", data.Adversarial)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure5(s, res.BestX)
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationInnerSteps varies T of the multi-step GDA (Eq. 5).
func BenchmarkAblationInnerSteps(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Curr)
	for _, t := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("T=%d", t), func(b *testing.B) {

			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchGradientConfig(uint64(i + 11))
				cfg.T = t
				cfg.Iters = 60
				res, err := core.GradientSearch(s.Target, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.BestRatio
			}
			b.ReportMetric(last, "ratio")
		})
	}
}

// BenchmarkAblationRestarts varies the restart count.
func BenchmarkAblationRestarts(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Curr)
	for _, r := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("restarts=%d", r), func(b *testing.B) {

			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchGradientConfig(uint64(i + 13))
				cfg.Restarts = r
				cfg.Iters = 60
				res, err := core.GradientSearch(s.Target, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.BestRatio
			}
			b.ReportMetric(last, "ratio")
		})
	}
}

// BenchmarkAblationObjective compares the Lagrangian reformulation (Eq. 3/4)
// against naive direct ascent on Eq. 2's numerator.
func BenchmarkAblationObjective(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Curr)
	for _, mode := range []core.ObjectiveMode{core.Lagrangian, core.DirectAscent} {
		b.Run(mode.String(), func(b *testing.B) {

			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := benchGradientConfig(uint64(i + 17))
				cfg.Mode = mode
				cfg.Iters = 60
				res, err := core.GradientSearch(s.Target, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.BestRatio
			}
			b.ReportMetric(last, "ratio")
		})
	}
}

// BenchmarkAblationGradientEstimator compares exact chain-rule gradients
// against finite-difference and SPSA estimates of an opaque routing stage.
func BenchmarkAblationGradientEstimator(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Curr)
	pipelines := map[string]*core.Pipeline{
		"exact": s.Model.Pipeline(),
		"fd":    s.Model.OpaqueRoutingPipeline().Grayboxed(1e-4),
	}
	x := make([]float64, s.Target.InputDim)
	r := rng.New(3)
	for i := range x {
		x[i] = r.Float64() * s.Target.MaxDemand
	}
	for name, p := range pipelines {
		b.Run(name, func(b *testing.B) {

			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Grad(x)
			}
		})
	}
}

// BenchmarkAblationParallelism measures ParallelGrads throughput as worker
// count grows — the parallel-gradients claim of §3.2.
func BenchmarkAblationParallelism(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Curr)
	const batch = 32
	xs := make([][]float64, batch)
	r := rng.New(4)
	for i := range xs {
		xs[i] = make([]float64, s.Target.InputDim)
		for j := range xs[i] {
			xs[i][j] = r.Float64() * s.Target.MaxDemand
		}
	}
	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {

			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.ParallelGrads(s.Target.Pipeline, xs, w)
			}
		})
	}
}

// BenchmarkAblationHistoryLength trains DOTE-Hist at several window sizes
// and attacks each — the attack surface grows with the window.
func BenchmarkAblationHistoryLength(b *testing.B) {
	b.ReportAllocs()
	base := experiments.QuickSetup(dote.Hist)
	base.Hidden = []int{24}
	base.TrainLen = 40
	base.TestLen = 5
	base.TrainEpochs = 4
	cfg := benchGradientConfig(19)
	cfg.Iters = 60
	cfg.Restarts = 1
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationHistoryLength(base, []int{2, 6, 12}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("history ablation %s: ratio %.2fx", r.Config, r.Ratio)
			}
		}
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkOptimalMLULP measures the simplex solve behind every ratio
// evaluation.
func BenchmarkOptimalMLULP(b *testing.B) {
	b.ReportAllocs()
	ps := paths.NewPathSet(topology.Abilene(), 4)
	gen := traffic.NewGravity(ps, 0.3, rng.New(1))
	tm := gen.Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := te.OptimalMLU(ps, tm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineForward measures one end-to-end system evaluation.
func BenchmarkPipelineForward(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Curr)
	x := make([]float64, s.Target.InputDim)
	r := rng.New(5)
	for i := range x {
		x[i] = r.Float64() * s.Target.MaxDemand
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Target.Pipeline.EvalScalar(x)
	}
}

// BenchmarkPipelineGrad measures one end-to-end chain-rule gradient.
func BenchmarkPipelineGrad(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Curr)
	x := make([]float64, s.Target.InputDim)
	r := rng.New(6)
	for i := range x {
		x[i] = r.Float64() * s.Target.MaxDemand
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Target.Pipeline.Grad(x)
	}
}

// BenchmarkPipelineBatchGrad measures one lock-step batched gradient over R
// restart rows — the hot path of the batched engine. Compare against R times
// the BenchmarkPipelineGrad cost for the batching win.
func BenchmarkPipelineBatchGrad(b *testing.B) {
	s := benchSetup(b, dote.Curr)
	r := rng.New(6)
	for _, rows := range []int{4, 8} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			xs := linalg.NewMatrix(rows, s.Target.InputDim)
			for i := range xs.Data {
				xs.Data[i] = r.Float64() * s.Target.MaxDemand
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Target.Pipeline.BatchGrad(xs)
			}
		})
	}
}

// BenchmarkGradSearchEngines runs the full gradient search at Restarts ≥ 4
// under both engines. The batched/scalar ns/op ratio is the PR's headline
// speedup number; the discovered ratios are identical by construction (the
// equivalence tests pin this down bitwise). LP ratio-scoring is engine-
// independent and dominates at the default eval cadence (profile: lp.pivot
// ≈ 84% of samples), so the ratio is evaluated once at the end here to
// measure the per-iteration descent–ascent engine itself.
func BenchmarkGradSearchEngines(b *testing.B) {
	s := benchSetup(b, dote.Curr)
	for _, restarts := range []int{4, 8} {
		for _, eng := range []core.SearchEngine{core.EngineScalar, core.EngineBatched} {
			b.Run(fmt.Sprintf("restarts=%d/%s", restarts, eng), func(b *testing.B) {
				b.ReportAllocs()
				var last float64
				for i := 0; i < b.N; i++ {
					cfg := benchGradientConfig(uint64(i + 23))
					cfg.Restarts = restarts
					cfg.Iters = 60
					cfg.EvalEvery = cfg.Iters // score once: isolate engine cost
					cfg.Engine = eng
					res, err := core.GradientSearch(s.Target, cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = res.BestRatio
				}
				b.ReportMetric(last, "ratio")
			})
		}
	}
}

// BenchmarkKShortestPaths measures the Yen path-set construction (§5, K=4).
func BenchmarkKShortestPaths(b *testing.B) {
	b.ReportAllocs()
	g := topology.Abilene()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths.NewPathSet(g, 4)
	}
}

// BenchmarkRouting measures the bilinear routing step alone.
func BenchmarkRouting(b *testing.B) {
	b.ReportAllocs()
	ps := paths.NewPathSet(topology.Abilene(), 4)
	gen := traffic.NewGravity(ps, 0.3, rng.New(7))
	tm := gen.Next()
	splits := te.UniformSplits(ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		te.MLU(ps, tm, splits)
	}
}

// BenchmarkDOTETrainingStep measures one end-to-end training step
// (forward + backward + harvest) of the quick-scale DOTE model.
func BenchmarkDOTETrainingStep(b *testing.B) {
	b.ReportAllocs()
	s := benchSetup(b, dote.Curr)
	ex := s.TrainEx[0]
	opts := dote.DefaultTrainOptions()
	opts.Epochs = 1
	opts.BatchSize = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dote.Train(s.Model, []traffic.Example{ex}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// incrementalBenchModel builds an untrained DOTE-Curr model on the largest
// stock topology (Geant, 22 nodes, K=4). Training does not change the FD
// gradient's cost profile, so untrained weights keep setup cheap.
func incrementalBenchModel() *dote.Model {
	ps := paths.NewPathSet(topology.Geant(), 4)
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{48}
	return dote.New(ps, cfg)
}

// BenchmarkIncrementalFDGrad is the tentpole's headline number: one
// gray-box FD gradient of the fused routing+MLU stage on Geant, dense
// full-vector probing versus incremental sparse probes. The two sub-benches
// compute bitwise-identical gradients (pinned by the dote equivalence
// tests); the acceptance bar is sparse ≥ 3x faster than dense.
func BenchmarkIncrementalFDGrad(b *testing.B) {
	m := incrementalBenchModel()
	pipelines := []struct {
		name string
		p    *core.Pipeline
	}{
		{"dense", m.OpaqueRoutingPipelineDense().Grayboxed(1e-4)},
		{"sparse", m.OpaqueRoutingPipeline().Grayboxed(1e-4)},
	}
	x := make([]float64, m.InputDim())
	r := rng.New(9)
	maxD := m.PS.Graph.AvgLinkCapacity()
	for i := range x {
		x[i] = r.Float64() * maxD
	}
	for _, pl := range pipelines {
		b.Run(pl.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pl.p.Grad(x)
			}
		})
	}
}

// BenchmarkSurrogateSearch is PR7's headline number: the same fixed-seed
// Geant-scale attack search driven by (a) pure sparse-FD probing — counted
// through a never-warm SurrogateEstimator, which the fallback-contract test
// pins as bitwise identical to the Grayboxed pipeline — and (b) the
// trust/verify surrogate. Each arm runs to Patience convergence and reports
// the converged best ratio plus the true stage evaluations it spent
// (surrogate.* counters). The acceptance bar is the surrogate arm reaching
// the FD arm's best ratio (within 1e-6 rel; strictly better also counts)
// on >= 5x fewer true evaluations.
func BenchmarkSurrogateSearch(b *testing.B) {
	m := incrementalBenchModel()
	target := &core.AttackTarget{
		Pipeline:  nil, // set per arm
		InputDim:  m.InputDim(),
		DemandLen: m.NumPairs(),
		PS:        m.PS,
		MaxDemand: m.PS.Graph.AvgLinkCapacity(),
	}
	searchCfg := func() core.GradientConfig {
		cfg := core.DefaultGradientConfig()
		cfg.Iters = 200
		cfg.Restarts = 2
		cfg.Seed = 19
		return cfg
	}

	coldFD := core.DefaultSurrogateGradConfig(2)
	coldFD.Surrogate.TrainSteps = 0
	coldFD.Surrogate.Warmup = 1 << 62 // never warm: bitwise sparse-FD, counted

	arms := []struct {
		name string
		sc   core.SurrogateGradConfig
	}{
		{"sparse-fd", coldFD},
		{"surrogate", core.DefaultSurrogateGradConfig(2)},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			var ratio float64
			var evals int64
			for i := 0; i < b.N; i++ {
				p, est := m.SurrogateRoutingPipeline(arm.sc)
				t := *target
				t.Pipeline = p
				cfg := searchCfg()
				cfg.EvalCache = core.NewEvalCache(1<<14, 0)
				res, err := core.GradientSearch(&t, cfg)
				if err != nil {
					b.Fatal(err)
				}
				st := est.Stats()
				ratio, evals = res.BestRatio, st.TrueEvals
				if i == 0 {
					b.Logf("%s: ratio %.6f, true evals %d (saved %d, surrogate VJPs %d, FD VJPs %d)",
						arm.name, ratio, evals, st.EvalsSaved, st.SurrogateVJPs, st.FDVJPs)
				}
			}
			b.ReportMetric(ratio, "ratio")
			b.ReportMetric(float64(evals), "true-evals")
		})
	}
}

// BenchmarkEvalCacheMemo measures true-ratio scoring against the sharded
// memo cache: "miss" scores b.N distinct demand vectors (cache misses plus
// the LP solve), "hit" rescoring one resident point, "nocache" the
// uncached baseline on that same point.
func BenchmarkEvalCacheMemo(b *testing.B) {
	s := benchSetup(b, dote.Curr)
	target := s.Target
	r := rng.New(10)
	x := make([]float64, target.InputDim)
	for i := range x {
		x[i] = r.Float64() * target.MaxDemand
	}
	ctx := context.Background()

	b.Run("nocache", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := target.RatioCtx(ctx, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		cache := core.NewEvalCache(1<<12, 0)
		// Prime the entry once, then measure pure hits.
		if _, _, _, _, err := target.RatioCached(ctx, cache, x); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, _, err := target.RatioCached(ctx, cache, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		cache := core.NewEvalCache(1<<20, 0)
		xs := make([]float64, target.InputDim)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(xs, x)
			xs[0] = x[0] + float64(i)*1e-3 // distinct quantized key per iter
			if _, _, _, _, err := target.RatioCached(ctx, cache, xs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
