GO ?= go

# Benchmark time per case for bench-json; CI uses 1x for a smoke snapshot,
# real measurement runs want something like 2s or 20x.
BENCHTIME ?= 2s
BENCHJSON_OUT ?= BENCH_PR5.json
# Optional committed baseline for a benchstat-style comparison table; the
# compare is informational and never fails the target.
BENCHJSON_BASELINE ?=
# bench-lp snapshot output and the committed baseline it is compared against.
BENCHLP_OUT ?= BENCH_PR6.json
BENCHLP_BASELINE ?= BENCH_PR5.json
# bench-surrogate snapshot output and its committed baseline.
BENCHSUR_OUT ?= BENCH_PR7.json
BENCHSUR_BASELINE ?= BENCH_PR6.json
# bench-milp snapshot output and its committed baseline.
BENCHMILP_OUT ?= BENCH_PR10.json
BENCHMILP_BASELINE ?= BENCH_PR7.json

.PHONY: all build test vet race bench bench-json bench-lp bench-surrogate bench-milp

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/ad/... ./internal/alloc/... ./internal/core/... ./internal/linalg/... ./internal/lp/... ./internal/milp/... ./internal/obs/... ./internal/serve/... ./internal/te/...

# Hot-path benchmarks of record: the end-to-end pipeline gradient and the
# optimal-MLU LP solve, with allocation counts.
bench:
	$(GO) test -run xxx -bench 'PipelineGrad|PipelineForward|OptimalMLULP' -benchmem .
	$(GO) test -run xxx -bench . -benchmem ./internal/lp/ ./internal/ad/

# bench-json archives the core benchmarks (scalar vs batched gradient paths,
# both search engines, and the Table 1 search with its "ratio" metric) as a
# machine-readable JSON snapshot.
bench-json:
	$(GO) test -run xxx -benchtime $(BENCHTIME) -benchmem \
		-bench 'BenchmarkPipelineGrad$$|BenchmarkPipelineBatchGrad|BenchmarkGradSearchEngines|BenchmarkTable1_DOTEHist|BenchmarkIncrementalFDGrad|BenchmarkEvalCacheMemo|BenchmarkAllocAttack' . \
		| $(GO) run ./cmd/benchjson -out $(BENCHJSON_OUT) $(if $(BENCHJSON_BASELINE),-compare $(BENCHJSON_BASELINE))

# bench-lp archives the sparse revised-simplex benchmarks — dense vs revised
# cold solves, dual-simplex RHS re-solves vs pristine cold solves (the
# pivot-count win of the tentpole), and the 100-node Waxman acceptance point —
# then runs the -race leg over the revised paths (concurrent pooled-solver
# borrow plus live stats scraping / method flipping).
bench-lp:
	{ $(GO) test -run xxx -benchtime $(BENCHTIME) -benchmem \
		-bench 'BenchmarkColdSolve|BenchmarkResolveRHS' ./internal/lp/ ; \
	  $(GO) test -run xxx -benchtime $(BENCHTIME) -benchmem \
		-bench 'BenchmarkWaxman100' ./internal/te/ ; } \
		| $(GO) run ./cmd/benchjson -out $(BENCHLP_OUT) $(if $(BENCHLP_BASELINE),-compare $(BENCHLP_BASELINE))
	$(GO) test -race -run 'Revised' ./internal/lp/ ./internal/te/

# bench-surrogate archives the surrogate-guided search headline — the same
# Geant-scale fixed-seed search through counted sparse-FD probing vs the
# trust/verify surrogate, with "ratio" and "true-evals" metrics (the
# true-evals-per-converged-search win) — then runs the -race leg over the
# shared online learner and trust state.
bench-surrogate:
	$(GO) test -run xxx -benchtime 1x -timeout 45m \
		-bench 'BenchmarkSurrogateSearch' . \
		| $(GO) run ./cmd/benchjson -out $(BENCHSUR_OUT) $(if $(BENCHSUR_BASELINE),-compare $(BENCHSUR_BASELINE))
	$(GO) test -race -count=1 -run 'SurrogateEstimator|OnlineSurrogateConcurrent' ./internal/core/
	$(GO) test -race -count=1 -run 'TestSurrogateFallbackContractBitwise' ./internal/dote/

# bench-milp archives the warm-started branch-and-bound headline: packing
# node throughput cold-clone vs warm vs wave-parallel (the ≥5x nodes/sec
# tentpole), the end-to-end alloc attack A/B over both engines, and the
# serve.Pool searches/hour fleet number — then runs the -race leg over
# concurrent parallel MILP solves sharing pools.
bench-milp:
	{ $(GO) test -run xxx -benchtime $(BENCHTIME) -benchmem \
		-bench 'BenchmarkPackingNodes' ./internal/milp/ ; \
	  $(GO) test -run xxx -benchtime 2x -benchmem \
		-bench 'BenchmarkAllocAttack' . ; \
	  $(GO) test -run xxx -benchtime $(BENCHTIME) -benchmem \
		-bench 'BenchmarkPoolThroughput' ./internal/serve/ ; } \
		| $(GO) run ./cmd/benchjson -out $(BENCHMILP_OUT) $(if $(BENCHMILP_BASELINE),-compare $(BENCHMILP_BASELINE))
	$(GO) test -race -count=1 -run 'Warm|TestConcurrentParallelSolves|TestPoolBackedMILPDeterminism' ./internal/milp/ ./internal/serve/
	$(GO) test -race -count=1 -run 'ResolveBounds|BasisSnapshot' ./internal/lp/
