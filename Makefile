GO ?= go

.PHONY: all build test vet race bench

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/ad/... ./internal/core/... ./internal/lp/...

# Hot-path benchmarks of record: the end-to-end pipeline gradient and the
# optimal-MLU LP solve, with allocation counts.
bench:
	$(GO) test -run xxx -bench 'PipelineGrad|PipelineForward|OptimalMLULP' -benchmem .
	$(GO) test -run xxx -bench . -benchmem ./internal/lp/ ./internal/ad/
